// spongelint — self-hosted static analysis for the SpongeFiles tree.
//
// Walks the given directories (default: src bench tests), tokenizes every
// C++ file with the lexer in src/lint, and runs the coroutine-safety and
// determinism checks from src/lint/analyzer.h. Unwaived diagnostics make
// the exit status non-zero, which is how the `lint_repo` ctest fails.
//
// Usage:
//   spongelint [--root DIR] [--compile-commands FILE] [--verbose]
//              [--format=text|json] [dirs...]
//
// --format=json emits one JSON object on stdout with per-diagnostic
// records (stable check id, file, line, message, waived, waiver_reason)
// for CI and tools/shardcheck.sh to consume; the exit status contract is
// unchanged (non-zero iff any unwaived diagnostic).
//
// --compile-commands points at a CMake-exported compile_commands.json;
// its -I roots are used to resolve quoted #includes so the cross-file
// symbol index (Status-returning functions, unordered members) is scoped
// to each file's include closure instead of every name in the repo.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "lint/analyzer.h"
#include "lint/compile_commands.h"
#include "lint/lexer.h"

namespace fs = std::filesystem;
using spongefiles::lint::AnalyzerOptions;
using spongefiles::lint::CompileCommands;
using spongefiles::lint::Diagnostic;
using spongefiles::lint::FileReport;
using spongefiles::lint::LexResult;
using spongefiles::lint::SymbolIndex;

namespace {

bool IsCxxFile(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".cpp" || ext == ".hpp";
}

std::string ReadFileOrDie(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "spongelint: cannot read %s\n", p.c_str());
    std::exit(2);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

struct FileUnit {
  std::string rel;   // root-relative path, used in diagnostics
  fs::path abs;      // absolute path, used for include resolution
  LexResult lex;
  SymbolIndex index;
};

// Resolves one quoted include against the includer's directory, then each
// include root; returns the canonical hit or "".
std::string ResolveInclude(const std::string& quoted, const fs::path& includer,
                           const std::vector<fs::path>& roots,
                           const std::set<std::string>& known) {
  std::vector<fs::path> candidates;
  candidates.push_back(includer.parent_path() / quoted);
  for (const auto& root : roots) candidates.push_back(root / quoted);
  for (const auto& c : candidates) {
    std::error_code ec;
    fs::path canon = fs::weakly_canonical(c, ec);
    if (ec) continue;
    auto it = known.find(canon.string());
    if (it != known.end()) return *it;
  }
  return "";
}

// Minimal JSON string escaping (quotes, backslashes, control chars).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = ".";
  std::string compile_commands_path;
  bool verbose = false;
  bool json = false;
  std::vector<std::string> dirs;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--compile-commands" && i + 1 < argc) {
      compile_commands_path = argv[++i];
    } else if (arg.rfind("--format", 0) == 0) {
      std::string fmt;
      if (arg.rfind("--format=", 0) == 0) {
        fmt = arg.substr(9);
      } else if (arg == "--format" && i + 1 < argc) {
        fmt = argv[++i];
      }
      if (fmt != "text" && fmt != "json") {
        std::fprintf(stderr, "spongelint: unknown format '%s'\n", fmt.c_str());
        return 2;
      }
      json = fmt == "json";
    } else if (arg == "--verbose" || arg == "-v") {
      verbose = true;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: spongelint [--root DIR] [--compile-commands FILE] "
          "[--verbose] [--format=text|json] [dirs...]\n");
      return 0;
    } else {
      dirs.push_back(arg);
    }
  }
  if (dirs.empty()) dirs = {"src", "bench", "tests"};

  std::error_code ec;
  root = fs::weakly_canonical(root, ec);

  // Include roots: the compile database's -I dirs when available, else
  // the repository convention (src/ is the include root).
  std::vector<fs::path> include_roots;
  if (!compile_commands_path.empty()) {
    auto db = CompileCommands::Load(compile_commands_path);
    if (db.ok()) {
      for (const auto& dir : db->AllIncludeDirs()) {
        include_roots.emplace_back(dir);
      }
    } else {
      std::fprintf(stderr, "spongelint: warning: %s\n",
                   db.status().ToString().c_str());
    }
  }
  if (include_roots.empty()) {
    include_roots.push_back(root / "src");
    include_roots.push_back(root);
  }

  // Collect files, sorted for deterministic output.
  std::vector<fs::path> files;
  for (const auto& dir : dirs) {
    fs::path base = dir;
    if (base.is_relative()) base = root / base;
    if (fs::is_regular_file(base)) {
      files.push_back(base);
      continue;
    }
    if (!fs::is_directory(base)) {
      std::fprintf(stderr, "spongelint: no such directory: %s\n",
                   base.c_str());
      return 2;
    }
    for (const auto& e : fs::recursive_directory_iterator(base)) {
      if (e.is_regular_file() && IsCxxFile(e.path())) {
        files.push_back(e.path());
      }
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  // Pass 1: lex and index every file.
  std::vector<FileUnit> units;
  std::set<std::string> known_paths;
  for (const auto& f : files) {
    FileUnit u;
    u.abs = fs::weakly_canonical(f, ec);
    u.rel = fs::relative(u.abs, root, ec).string();
    if (u.rel.empty() || u.rel.rfind("..", 0) == 0) u.rel = u.abs.string();
    u.lex = spongefiles::lint::Lex(ReadFileOrDie(u.abs));
    u.index = spongefiles::lint::IndexSymbols(u.lex);
    known_paths.insert(u.abs.string());
    units.push_back(std::move(u));
  }

  // Include graph over the analyzed set (quoted includes only; system
  // headers are not project files).
  std::map<std::string, std::vector<std::string>> edges;
  std::map<std::string, const FileUnit*> by_abs;
  for (const auto& u : units) by_abs[u.abs.string()] = &u;
  for (const auto& u : units) {
    for (const auto& inc : u.index.quoted_includes) {
      std::string hit = ResolveInclude(inc, u.abs, include_roots, known_paths);
      if (!hit.empty()) edges[u.abs.string()].push_back(hit);
    }
  }

  // Pass 2: analyze each file against the symbol index of its include
  // closure (self + transitively included project files).
  AnalyzerOptions opts;
  size_t total = 0, waived = 0, files_with_findings = 0;
  std::vector<Diagnostic> all_diags;
  for (const auto& u : units) {
    SymbolIndex scoped;
    std::set<std::string> visited;
    std::vector<std::string> frontier = {u.abs.string()};
    while (!frontier.empty()) {
      std::string cur = frontier.back();
      frontier.pop_back();
      if (!visited.insert(cur).second) continue;
      auto it = by_abs.find(cur);
      if (it == by_abs.end()) continue;
      scoped.Merge(it->second->index);
      auto eit = edges.find(cur);
      if (eit != edges.end()) {
        for (const auto& next : eit->second) frontier.push_back(next);
      }
    }
    FileReport report =
        spongefiles::lint::AnalyzeFile(u.rel, u.lex, scoped, opts);
    bool printed = false;
    for (const Diagnostic& d : report.diagnostics) {
      if (d.waived) {
        ++waived;
        if (verbose && !json) std::printf("%s\n", d.ToString().c_str());
      } else {
        ++total;
        printed = true;
        if (!json) std::printf("%s\n", d.ToString().c_str());
      }
      if (json) all_diags.push_back(d);
    }
    if (printed) ++files_with_findings;
  }

  if (json) {
    std::printf("{\n  \"files\": %zu,\n  \"unwaived\": %zu,\n"
                "  \"waived\": %zu,\n  \"diagnostics\": [",
                units.size(), total, waived);
    for (size_t i = 0; i < all_diags.size(); ++i) {
      const Diagnostic& d = all_diags[i];
      std::printf(
          "%s\n    {\"check\": \"%s\", \"file\": \"%s\", \"line\": %d, "
          "\"message\": \"%s\", \"waived\": %s, \"waiver_reason\": \"%s\"}",
          i == 0 ? "" : ",", spongefiles::lint::CheckId(d.check),
          JsonEscape(d.file).c_str(), d.line, JsonEscape(d.message).c_str(),
          d.waived ? "true" : "false", JsonEscape(d.waiver_reason).c_str());
    }
    std::printf("%s]\n}\n", all_diags.empty() ? "" : "\n  ");
  } else {
    std::printf(
        "spongelint: %zu files, %zu unwaived diagnostic%s in %zu file%s, "
        "%zu waived\n",
        units.size(), total, total == 1 ? "" : "s", files_with_findings,
        files_with_findings == 1 ? "" : "s", waived);
  }
  return total == 0 ? 0 : 1;
}
