#!/usr/bin/env bash
# Runs spongelint over the tree, then builds with ASan+UBSan (warnings as
# errors) and runs the full test suite under it.
# Usage: tools/check.sh [--perf] [--tsan] [build-dir]   (default: build-san)
#   --perf  afterwards runs tools/perf.sh: the self-perf suite run twice
#           on one build, gating on byte-identical metrics/trace/sim
#           snapshots between the runs.
#   --tsan  run ONLY the ThreadSanitizer leg: a separate build
#           (build-dir, default build-tsan) with SPONGEFILES_SANITIZE=thread
#           running the parallel-engine test shard (ctest -R Parallel).
#           TSAN cannot combine with ASan, hence its own mode and tree; it
#           certifies the threaded lane driver's host synchronization (the
#           simulated-state discipline is covered by the seq-vs-par
#           byte-identity gates, which need no sanitizer).
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
perf=0
tsan=0
build=""
for arg in "$@"; do
  case "$arg" in
    --perf) perf=1 ;;
    --tsan) tsan=1 ;;
    *) build="$arg" ;;
  esac
done

if [ "$tsan" = 1 ]; then
  build="${build:-$repo/build-tsan}"
  cmake -B "$build" -S "$repo" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DSPONGEFILES_WERROR=ON \
    -DSPONGEFILES_SANITIZE=thread
  cmake --build "$build" -j "$(nproc)" --target sim_parallel_test
  export TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1"
  ctest --test-dir "$build" --output-on-failure -j "$(nproc)" -R Parallel
  echo "tsan check passed"
  exit 0
fi

build="${build:-$repo/build-san}"

# Static analysis first: it is seconds where the sanitizer sweep is
# minutes, and a coroutine-safety or determinism finding invalidates the
# run anyway.
"$repo/tools/lint/run.sh" "$build-lint"

# Shard-safety conflict census right after lint (same reasoning: it is
# sub-second once built, and an unexplained conflict is a design finding
# that invalidates the parallel-engine roadmap item, not just this run).
# Reuses the lint build tree; the merged census is published next to it.
"$repo/tools/shardcheck.sh" "$build-lint" "$build-lint/SHARDCHECK.json"

cmake -B "$build" -S "$repo" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DSPONGEFILES_WERROR=ON \
  "-DSPONGEFILES_SANITIZE=address;undefined"
cmake --build "$build" -j "$(nproc)"

# Abort on the first UBSan report instead of logging and continuing.
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"
export ASAN_OPTIONS="strict_string_checks=1:detect_stack_use_after_return=1"
# No leak suppressions: Engine::DrainDetached reclaims every detached
# coroutine frame (service loops, RPCs abandoned on hung servers) at
# teardown, so any LeakSanitizer report is a real bug.
# The chaos test stays cheap under plain ctest; the sanitizer run is where
# we spend the time on a wide seed sweep. Every chaos run (baseline and
# injected) executes with speculation and hedged reads enabled, so the
# sweep also shakes down backup attempts racing faults and hedge
# duplicates landing after their primary was abandoned. The chaos testbed
# is multi-rack, so the seed sweep also draws tracker-shard outages,
# stale-shard pauses, and gossip partitions from the fault mix. Chunk
# replication is on and crashes are fail-stop, so replica writes, read
# failover, and the repair loop all run under every schedule.
export SPONGE_CHAOS_SEEDS=20
# Deep coroutine resumption chains (k-way merge driving a reducer driving
# bag spills) fit the default 8 MB stack, but not with ASan's inflated
# frames and fake-stack bookkeeping.
ulimit -s 131072

ctest --test-dir "$build" --output-on-failure -j "$(nproc)"
echo "sanitizer check passed"

# Datacenter-replay smoke under the sanitizers: a small rack shape with
# the mid-run tracker-shard outage. The binary exits nonzero unless every
# task completed and the outage's tracker-down spill decisions stayed
# isolated to the affected rack.
"$build/bench/bench_datacenter" --racks=4 --nodes-per-rack=8 --jobs=80 \
  --out="$build/BENCH_datacenter_smoke.json"
echo "datacenter smoke passed"

# SSD-rung smoke under the sanitizers: the same shape with a throttled
# per-node SSD, checked for chunks actually landing on the rung — the
# reserve -> write -> read -> release path and the bandwidth override all
# execute under ASan/UBSan.
"$build/bench/bench_datacenter" --racks=4 --nodes-per-rack=8 --jobs=80 \
  --ssd-bw=400 \
  --out="$build/BENCH_datacenter_ssd_smoke.json" \
  --sim-out="$build/BENCH_datacenter_ssd_smoke_sim.json"
if grep -q '"chunks_ssd": [1-9]' "$build/BENCH_datacenter_ssd_smoke_sim.json"; then
  echo "ssd smoke passed"
else
  echo "ssd smoke: no chunks landed on the SSD rung" >&2
  exit 1
fi

# Crash-recovery smoke under the sanitizers: fail-stop crashes mid-run on
# a small shape. The binary exits nonzero unless the replicated run
# finishes with zero chunk-lost re-runs and byte-identical output, the
# unreplicated run pays visible re-runs, nothing leaks, and the repair
# loop stays within its bandwidth budget.
"$build/bench/bench_recovery" --racks=4 --nodes-per-rack=8 --jobs=60 \
  --crashes=3 --out="$build/BENCH_recovery_smoke.json"
echo "recovery smoke passed"

if [ "$perf" = 1 ]; then
  "$repo/tools/perf.sh"
fi
