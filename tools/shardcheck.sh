#!/usr/bin/env bash
# Shard-safety conflict census (the dynamic half of the shard analysis;
# the static half is spongelint's ownership pass). Builds the shardcheck
# driver and runs every workload shape under the engine's instrumented
# access-set mode TWICE: once on the legacy single-queue engine (the
# sequential census that predicts what the parallel engine may share) and
# once on the sharded engine's serial reference driver (--engine=seq),
# where the recorder stamps each access with its lane and window and flags
# any same-window cross-lane conflict. A conflict in the sharded pass that
# the sequential census did not predict fails the gate: it would be a real
# data race under the threaded driver. The per-shape censuses are merged
# into one JSON artifact — the go/no-go evidence for the parallel engine.
#
# Usage: tools/shardcheck.sh [build-dir] [artifact]
#   build-dir  default: build        (reused if already configured)
#   artifact   default: <build-dir>/SHARDCHECK.json
# Exit: 0 when every shape is conflict-free under both engines, 1 otherwise.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build}"
artifact="${2:-$build/SHARDCHECK.json}"

cmake -B "$build" -S "$repo" >/dev/null
cmake --build "$build" -j "$(nproc)" --target shardcheck >/dev/null

mkdir -p "$(dirname "$artifact")"
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

status=0
for shape in chaos datacenter recovery; do
  for engine in legacy seq; do
    if ! "$build/tools/shardcheck/shardcheck" --shape="$shape" \
        --engine="$engine" --out="$tmpdir/$shape-$engine.json"; then
      status=1
    fi
  done
done

# Merge the shape reports into one artifact (pure text splice; the
# per-shape JSON is already deterministic).
{
  echo '{'
  echo '  "shapes": ['
  first=1
  for shape in chaos datacenter recovery; do
    for engine in legacy seq; do
      if [ "$first" = 1 ]; then first=0; else echo ','; fi
      sed -e 's/^/    /' -e '$d' "$tmpdir/$shape-$engine.json" \
        | sed -e '1s/^    {/    {/'
      printf '    }'
    done
  done
  echo
  echo '  ]'
  echo '}'
} > "$artifact"

if [ "$status" = 0 ]; then
  echo "shardcheck: all shapes conflict-free on both engines; census at $artifact"
else
  echo "shardcheck: UNEXPLAINED CONFLICTS — see $artifact" >&2
fi
exit "$status"
