#!/usr/bin/env bash
# Shard-safety conflict census (the dynamic half of the shard analysis;
# the static half is spongelint's ownership pass). Builds the shardcheck
# driver, runs every workload shape under the engine's instrumented
# access-set mode, and merges the per-shape censuses into one JSON
# artifact — the go/no-go evidence for the parallel engine: zero
# unexplained conflicts means no event pair the lookahead rule would run
# concurrently shares non-sanctioned state.
#
# Usage: tools/shardcheck.sh [build-dir] [artifact]
#   build-dir  default: build        (reused if already configured)
#   artifact   default: <build-dir>/SHARDCHECK.json
# Exit: 0 when every shape is conflict-free, 1 otherwise.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build}"
artifact="${2:-$build/SHARDCHECK.json}"

cmake -B "$build" -S "$repo" >/dev/null
cmake --build "$build" -j "$(nproc)" --target shardcheck >/dev/null

mkdir -p "$(dirname "$artifact")"
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

status=0
for shape in chaos datacenter recovery; do
  if ! "$build/tools/shardcheck/shardcheck" --shape="$shape" \
      --out="$tmpdir/$shape.json"; then
    status=1
  fi
done

# Merge the three shape reports into one artifact (pure text splice; the
# per-shape JSON is already deterministic).
{
  echo '{'
  echo '  "shapes": ['
  first=1
  for shape in chaos datacenter recovery; do
    if [ "$first" = 1 ]; then first=0; else echo ','; fi
    sed -e 's/^/    /' -e '$d' "$tmpdir/$shape.json" | sed -e '1s/^    {/    {/'
    printf '    }'
  done
  echo
  echo '  ]'
  echo '}'
} > "$artifact"

if [ "$status" = 0 ]; then
  echo "shardcheck: all shapes conflict-free; census at $artifact"
else
  echo "shardcheck: UNEXPLAINED CONFLICTS — see $artifact" >&2
fi
exit "$status"
