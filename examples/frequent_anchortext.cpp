// The paper's "Frequent Anchortext" Pig query: group pages by language and
// report each language's most frequent anchortext terms via a holistic
// two-pass top-k UDF. English is the giant, straggling group.

#include <cstdio>

#include "common/units.h"
#include "workload/testbed.h"

using namespace spongefiles;

int main() {
  workload::Testbed bed;
  workload::WebDatasetConfig web_config;
  web_config.total_bytes = GiB(1);  // scaled down; benches run 10 GB
  workload::WebDataset web(&bed.dfs(), "webcrawl", web_config);

  auto result = bed.RunJob(workload::MakeAnchortextJob(
      &web, mapred::SpillMode::kSponge, /*k=*/5));
  if (!result.ok()) {
    std::printf("query failed: %s\n", result.status().ToString().c_str());
    return 1;
  }

  std::printf("top anchortext terms per language (job took %s):\n",
              FormatDuration(result->runtime).c_str());
  std::string current;
  for (const mapred::Record& row : result->output) {
    if (row.key != current) {
      current = row.key;
      std::printf("  %s:\n", current.c_str());
    }
    std::printf("    %-12s %8.0f occurrences\n", row.fields[0].c_str(),
                row.number);
  }

  const mapred::TaskStats* straggler = result->straggler();
  std::printf(
      "straggling reduce (english): input=%s spilled=%s via %llu sponge "
      "chunks (%llu local / %llu remote)\n",
      FormatBytes(straggler->input_bytes).c_str(),
      FormatBytes(straggler->spill.bytes_spilled).c_str(),
      static_cast<unsigned long long>(straggler->spill.sponge_chunks),
      static_cast<unsigned long long>(straggler->spill.sponge_chunks_local),
      static_cast<unsigned long long>(
          straggler->spill.sponge_chunks_remote));
  return 0;
}
