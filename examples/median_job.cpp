// The paper's MapReduce macro-benchmark job: the exact median of a large
// set of numbers through a single reduce task, run once spilling to disk
// and once spilling to SpongeFiles on the 30-node testbed.
//
// Scaled down from the benches' full 10 GB so it runs in a few seconds;
// bench/bench_fig4_no_contention reproduces the paper-scale numbers.

#include <cstdio>

#include "common/units.h"
#include "workload/testbed.h"

using namespace spongefiles;
using workload::Testbed;

namespace {

Duration RunOnce(mapred::SpillMode mode) {
  Testbed bed;  // 30 nodes, 1 GB heaps, 1 GB sponge memory per node
  workload::NumbersDatasetConfig data_config;
  data_config.count = 100001;          // values 0..100000
  data_config.record_size = 10 * kKiB;  // ~1 GB total, one straggling reduce
  workload::NumbersDataset numbers(&bed.dfs(), "numbers", data_config);

  auto result = bed.RunJob(workload::MakeMedianJob(&numbers, mode));
  if (!result.ok()) {
    std::printf("job failed: %s\n", result.status().ToString().c_str());
    return 0;
  }
  const mapred::TaskStats* straggler = result->straggler();
  std::printf(
      "%-12s median=%.0f (expected %.0f)  job=%s  straggler: input=%s "
      "spilled=%s chunks=%llu\n",
      mode == mapred::SpillMode::kSponge ? "SpongeFiles" : "disk",
      result->output[0].number, numbers.expected_median(),
      FormatDuration(result->runtime).c_str(),
      FormatBytes(straggler->input_bytes).c_str(),
      FormatBytes(straggler->spill.bytes_spilled).c_str(),
      static_cast<unsigned long long>(straggler->spill.sponge_chunks));
  return result->runtime;
}

}  // namespace

int main() {
  std::printf("median job on the 30-node testbed (1 GB input, 1 GB heaps)\n");
  Duration disk = RunOnce(mapred::SpillMode::kDisk);
  Duration sponge = RunOnce(mapred::SpillMode::kSponge);
  if (disk > 0 && sponge > 0) {
    std::printf("SpongeFiles reduce the job runtime by %.0f%%\n",
                100.0 * (1.0 - static_cast<double>(sponge) /
                                   static_cast<double>(disk)));
  }
  return 0;
}
