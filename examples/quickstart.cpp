// Quickstart: the SpongeFile API on a small simulated cluster.
//
// Builds a 4-node rack, spills 12 MB through a SpongeFile whose local pool
// only holds 4 MB (forcing remote-memory chunks), reads it back verifying
// integrity, and prints where every chunk landed.

#include <cstdio>
#include <string>

#include "cluster/cluster.h"
#include "cluster/dfs.h"
#include "common/checksum.h"
#include "common/units.h"
#include "sim/engine.h"
#include "sponge/sponge_env.h"
#include "sponge/sponge_file.h"

using namespace spongefiles;

namespace {

sim::Task<> Demo(sim::Engine* engine, sponge::SpongeEnv* env) {
  // Every spilling task registers so sponge servers can track liveness.
  sponge::TaskContext task = env->StartTask(/*node=*/0);
  sponge::SpongeFile file(env, &task, "quickstart-spill");

  // Write 12 MB of patterned data.
  std::string block(1 << 16, '\0');
  for (size_t i = 0; i < block.size(); ++i) {
    block[i] = static_cast<char>(i * 131 % 251);
  }
  Checksum written;
  SimTime start = engine->now();
  for (int i = 0; i < 192; ++i) {  // 192 x 64 KB = 12 MB
    written.Update(Slice(block));
    Status status = co_await file.AppendBytes(Slice(block));
    if (!status.ok()) {
      std::printf("append failed: %s\n", status.ToString().c_str());
      co_return;
    }
  }
  (void)co_await file.Close();
  std::printf("wrote %s in %s (simulated)\n",
              FormatBytes(file.size()).c_str(),
              FormatDuration(engine->now() - start).c_str());

  // Read it back sequentially (with prefetch) and verify integrity.
  start = engine->now();
  Checksum read_back;
  uint64_t bytes = 0;
  while (true) {
    auto chunk = co_await file.ReadNext();
    if (!chunk.ok()) {
      std::printf("read failed: %s\n", chunk.status().ToString().c_str());
      co_return;
    }
    if (chunk->empty()) break;
    auto data = chunk->ToBytes();
    read_back.Update(Slice(data));
    bytes += data.size();
  }
  std::printf("read %s back in %s; checksums %s\n",
              FormatBytes(bytes).c_str(),
              FormatDuration(engine->now() - start).c_str(),
              written.digest() == read_back.digest() ? "MATCH" : "DIFFER");

  const auto& stats = file.stats();
  std::printf(
      "chunk placement: %llu local memory, %llu remote memory, %llu local "
      "disk, %llu DFS\n",
      static_cast<unsigned long long>(stats.chunks_local_memory),
      static_cast<unsigned long long>(stats.chunks_remote_memory),
      static_cast<unsigned long long>(stats.chunks_local_disk),
      static_cast<unsigned long long>(stats.chunks_dfs));

  co_await file.Delete();
  env->EndTask(task);
  std::printf("deleted; node 0 sponge pool free again: %s\n",
              FormatBytes(env->server(0).free_bytes()).c_str());
}

}  // namespace

int main() {
  sim::Engine engine;
  cluster::ClusterConfig cc;
  cc.num_nodes = 4;
  cc.node.sponge_memory = MiB(4);  // tiny pool: forces remote spilling
  cluster::Cluster cluster(&engine, cc);
  cluster::Dfs dfs(&cluster);
  sponge::SpongeEnv env(&cluster, &dfs, sponge::SpongeConfig{});

  // Prime the memory tracker once so remote allocation has a free list.
  auto prime = [](sponge::MemoryTracker* tracker) -> sim::Task<> {
    co_await tracker->PollOnce();
  };
  engine.Spawn(prime(&env.tracker()));
  engine.Run();

  engine.Spawn(Demo(&engine, &env));
  engine.Run();
  return 0;
}
