// A command-line driver for one-off experiments: pick a job, a spill
// mode, node memory, contention, and a scale, and get the runtime plus
// straggler statistics. Everything the figures sweep, hand-drivable.
//
//   run_experiment [--job median|anchortext|quantiles]
//                  [--spill disk|sponge]
//                  [--memory-gb N] [--sponge-gb N]
//                  [--ssd-gb F] [--ssd-bw MBps]
//                  [--background-grep] [--scale N] [--seed N]
//                  [--engine legacy|seq|par] [--projection node|rack]
//                  [--threads N]
//                  [--trace-out FILE] [--metrics-out FILE]
//
// --engine picks the event-loop driver (DESIGN.md §13): legacy is the
// single-queue engine, seq the sharded engine on the serial reference
// driver, par the same schedule on a thread pool (N threads, default host
// cores). --projection picks how the cluster maps onto lanes (default:
// node — the testbed is single-rack unless you also shrink nodes_per_rack).

#include <cstdio>
#include <cstring>
#include <string>

#include "common/units.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/parallel.h"
#include "workload/testbed.h"

using namespace spongefiles;

namespace {

struct Options {
  std::string job = "median";
  mapred::SpillMode spill = mapred::SpillMode::kSponge;
  uint64_t memory_gb = 16;
  uint64_t sponge_gb = 1;
  // Per-node SSD for the cascade's middle rung; 0 (the default) runs the
  // memory -> disk cascade with no SSD. Fractional GiB welcome.
  double ssd_gb = 0;
  double ssd_bw_mbps = 0;  // 0 keeps the SsdConfig stream-rate defaults
  bool background_grep = false;
  uint64_t scale = 10;  // datasets = paper size / scale
  uint64_t seed = 2014;
  std::string engine = "legacy";     // legacy | seq | par
  std::string projection = "node";   // node | rack
  unsigned threads = 0;              // par pool size; 0 = host cores
  std::string trace_out;
  std::string metrics_out;
};

bool Parse(int argc, char** argv, Options* options) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--job") {
      const char* v = next();
      if (v == nullptr) return false;
      options->job = v;
    } else if (arg == "--spill") {
      const char* v = next();
      if (v == nullptr) return false;
      if (std::strcmp(v, "disk") == 0) {
        options->spill = mapred::SpillMode::kDisk;
      } else if (std::strcmp(v, "sponge") == 0) {
        options->spill = mapred::SpillMode::kSponge;
      } else {
        return false;
      }
    } else if (arg == "--memory-gb") {
      const char* v = next();
      if (v == nullptr) return false;
      options->memory_gb = std::strtoull(v, nullptr, 10);
    } else if (arg == "--sponge-gb") {
      const char* v = next();
      if (v == nullptr) return false;
      options->sponge_gb = std::strtoull(v, nullptr, 10);
    } else if (arg == "--ssd-gb") {
      const char* v = next();
      if (v == nullptr) return false;
      options->ssd_gb = std::strtod(v, nullptr);
    } else if (arg == "--ssd-bw") {
      const char* v = next();
      if (v == nullptr) return false;
      options->ssd_bw_mbps = std::strtod(v, nullptr);
    } else if (arg == "--background-grep") {
      options->background_grep = true;
    } else if (arg == "--scale") {
      const char* v = next();
      if (v == nullptr) return false;
      options->scale = std::max<uint64_t>(1, std::strtoull(v, nullptr, 10));
    } else if (arg == "--seed") {
      const char* v = next();
      if (v == nullptr) return false;
      options->seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--engine") {
      const char* v = next();
      if (v == nullptr) return false;
      options->engine = v;
    } else if (arg == "--projection") {
      const char* v = next();
      if (v == nullptr) return false;
      options->projection = v;
    } else if (arg == "--threads") {
      const char* v = next();
      if (v == nullptr) return false;
      options->threads =
          static_cast<unsigned>(std::strtoull(v, nullptr, 10));
    } else if (arg == "--trace-out") {
      const char* v = next();
      if (v == nullptr) return false;
      options->trace_out = v;
    } else if (arg == "--metrics-out") {
      const char* v = next();
      if (v == nullptr) return false;
      options->metrics_out = v;
    } else {
      return false;
    }
  }
  if (options->engine != "legacy" && options->engine != "seq" &&
      options->engine != "par") {
    return false;
  }
  if (options->projection != "node" && options->projection != "rack") {
    return false;
  }
  return options->job == "median" || options->job == "anchortext" ||
         options->job == "quantiles";
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  if (!Parse(argc, argv, &options)) {
    std::fprintf(
        stderr,
        "usage: %s [--job median|anchortext|quantiles] [--spill "
        "disk|sponge] [--memory-gb N] [--sponge-gb N] [--ssd-gb F] "
        "[--ssd-bw MBps] [--background-grep] "
        "[--scale N] [--seed N] [--engine legacy|seq|par] "
        "[--projection node|rack] [--threads N] [--trace-out FILE] "
        "[--metrics-out FILE]\n",
        argv[0]);
    return 2;
  }
  if (!options.trace_out.empty()) {
    obs::Tracer::Default().set_enabled(true);
  }

  workload::TestbedConfig bed_config;
  bed_config.node_memory = GiB(options.memory_gb);
  bed_config.sponge_memory = GiB(options.sponge_gb);
  if (options.ssd_gb > 0) {
    bed_config.ssd.capacity = static_cast<uint64_t>(
        options.ssd_gb * 1024.0 * 1024.0 * 1024.0);
    if (options.ssd_bw_mbps > 0) {
      bed_config.ssd.read_bandwidth = options.ssd_bw_mbps * 1e6;
      bed_config.ssd.write_bandwidth = options.ssd_bw_mbps * 1e6;
    }
  }
  if (options.engine != "legacy") {
    bed_config.shard_projection = options.projection == "rack"
                                      ? workload::ShardProjection::kRack
                                      : workload::ShardProjection::kNode;
    if (options.engine == "par") {
      bed_config.shard_threads =
          options.threads > 0 ? options.threads : sim::HostCores();
    }
  }
  workload::Testbed bed(bed_config);

  std::unique_ptr<workload::WebDataset> web;
  std::unique_ptr<workload::NumbersDataset> numbers;
  mapred::JobConfig config;
  if (options.job == "median") {
    workload::NumbersDatasetConfig data;
    data.count = 1000001 / options.scale;
    data.seed = options.seed;
    numbers = std::make_unique<workload::NumbersDataset>(&bed.dfs(),
                                                         "numbers", data);
    config = workload::MakeMedianJob(numbers.get(), options.spill);
  } else {
    workload::WebDatasetConfig data;
    data.total_bytes = GiB(10) / options.scale;
    data.seed = options.seed;
    web = std::make_unique<workload::WebDataset>(&bed.dfs(), "web", data);
    config = options.job == "anchortext"
                 ? workload::MakeAnchortextJob(web.get(), options.spill)
                 : workload::MakeSpamQuantilesJob(web.get(), options.spill);
  }

  std::optional<mapred::JobConfig> background;
  std::unique_ptr<workload::ScanDataset> grep_data;
  if (options.background_grep) {
    grep_data = std::make_unique<workload::ScanDataset>(
        &bed.dfs(), "grepdata", 4ull * GiB(1024) / options.scale);
    background = workload::MakeGrepJob(grep_data.get(), nullptr);
  }

  auto result = bed.RunJob(std::move(config), std::move(background));
  if (!result.ok()) {
    std::fprintf(stderr, "job failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  const mapred::TaskStats* straggler = result->straggler();
  std::printf("job                 : %s (%s spilling)\n",
              options.job.c_str(),
              options.spill == mapred::SpillMode::kSponge ? "SpongeFile"
                                                          : "disk");
  std::printf("runtime             : %s\n",
              FormatDuration(result->runtime).c_str());
  std::printf("map tasks           : %zu\n", result->map_tasks.size());
  if (straggler != nullptr) {
    std::printf("straggler input     : %s (%llu records)\n",
                FormatBytes(straggler->input_bytes).c_str(),
                static_cast<unsigned long long>(straggler->input_records));
    std::printf("straggler spilled   : %s in %llu sponge chunks "
                "(%llu local / %llu remote / %llu ssd / %llu disk / "
                "%llu dfs)\n",
                FormatBytes(straggler->spill.bytes_spilled).c_str(),
                static_cast<unsigned long long>(
                    straggler->spill.sponge_chunks),
                static_cast<unsigned long long>(
                    straggler->spill.sponge_chunks_local),
                static_cast<unsigned long long>(
                    straggler->spill.sponge_chunks_remote),
                static_cast<unsigned long long>(
                    straggler->spill.sponge_chunks_ssd),
                static_cast<unsigned long long>(
                    straggler->spill.sponge_chunks_disk),
                static_cast<unsigned long long>(
                    straggler->spill.sponge_chunks_dfs));
  }
  for (size_t i = 0; i < std::min<size_t>(result->output.size(), 5); ++i) {
    const mapred::Record& row = result->output[i];
    std::printf("output[%zu]           : %s %s %.3f\n", i, row.key.c_str(),
                row.fields.empty() ? "" : row.fields[0].c_str(),
                row.number);
  }
  if (!options.trace_out.empty()) {
    Status written = obs::Tracer::Default().WriteFile(options.trace_out);
    if (!written.ok()) {
      std::fprintf(stderr, "trace write failed: %s\n",
                   written.ToString().c_str());
      return 1;
    }
    std::printf("trace written       : %s\n", options.trace_out.c_str());
  }
  if (!options.metrics_out.empty()) {
    Status written =
        obs::Registry::Default().WriteJsonFile(options.metrics_out);
    if (!written.ok()) {
      std::fprintf(stderr, "metrics write failed: %s\n",
                   written.ToString().c_str());
      return 1;
    }
    std::printf("metrics written     : %s\n", options.metrics_out.c_str());
  }
  return 0;
}
