// The paper's "Spam Quantiles" Pig query: group pages by domain and report
// spam-score quantiles per domain. The UDF keeps full, unprojected tuples
// and sorts them (external sort through the spillable DataBag), so the
// giant domain's group spills several times its input size — the
// hastily-written-UDF pattern of section 4.2.1.

#include <cstdio>

#include "common/units.h"
#include "workload/testbed.h"

using namespace spongefiles;

int main() {
  workload::Testbed bed;
  workload::WebDatasetConfig web_config;
  web_config.total_bytes = GiB(1);  // scaled down; benches run 10 GB
  workload::WebDataset web(&bed.dfs(), "webcrawl", web_config);

  auto result = bed.RunJob(
      workload::MakeSpamQuantilesJob(&web, mapred::SpillMode::kSponge));
  if (!result.ok()) {
    std::printf("query failed: %s\n", result.status().ToString().c_str());
    return 1;
  }

  // Print the giant domain's quantiles (scores are uniform in [0,1), so
  // q25/q50/q75 should land near 0.25/0.5/0.75).
  std::printf("spam-score quantiles (job took %s):\n",
              FormatDuration(result->runtime).c_str());
  std::string giant = workload::WebDataset::DomainName(0);
  for (const mapred::Record& row : result->output) {
    if (row.key != giant) continue;
    std::printf("  %s %-5s = %.3f\n", row.key.c_str(), row.fields[0].c_str(),
                row.number);
  }

  const mapred::TaskStats* straggler = result->straggler();
  std::printf(
      "straggling reduce (%s): input=%s spilled=%s (%.1fx the input — bag "
      "fill + external-sort passes)\n",
      giant.c_str(), FormatBytes(straggler->input_bytes).c_str(),
      FormatBytes(straggler->spill.bytes_spilled).c_str(),
      static_cast<double>(straggler->spill.bytes_spilled) /
          static_cast<double>(straggler->input_bytes));
  return 0;
}
