#include <gtest/gtest.h>

#include <memory>

#include "cluster/cluster.h"
#include "cluster/dfs.h"
#include "common/units.h"
#include "mapred/job_tracker.h"
#include "sim/engine.h"
#include "sponge/sponge_env.h"

namespace spongefiles::mapred {
namespace {

// All splits on one node: delay scheduling should migrate work to the
// idle nodes once the locality wait expires.
class HotNodeInput : public InputFormat {
 public:
  HotNodeInput(cluster::Dfs* dfs, size_t num_splits, uint64_t split_bytes)
      : num_splits_(num_splits), split_bytes_(split_bytes) {
    // One DFS block per split, all forced onto whatever node gets block 0
    // by making each split its own single-block file created... simpler:
    // one file whose every block lands round-robin; instead we pin
    // placement by using one file per split with the same name hash.
    for (size_t i = 0; i < num_splits; ++i) {
      std::string name = "hot" + std::to_string(i);
      (void)dfs->CreateFile(name, split_bytes);
      names_.push_back(name);
    }
  }

  std::vector<InputSplit> Splits() override {
    std::vector<InputSplit> out;
    for (size_t i = 0; i < num_splits_; ++i) {
      InputSplit split;
      split.dfs_file = names_[i];
      split.offset = 0;
      split.bytes = split_bytes_;
      out.push_back(std::move(split));
    }
    return out;
  }

  std::vector<std::string> names_;

 private:
  size_t num_splits_;
  uint64_t split_bytes_;
};

struct SchedFixture {
  sim::Engine engine;
  std::unique_ptr<cluster::Cluster> cluster_;
  std::unique_ptr<cluster::Dfs> dfs;
  std::unique_ptr<sponge::SpongeEnv> env;
  std::unique_ptr<JobTracker> tracker;

  SchedFixture() {
    cluster::ClusterConfig cc;
    cc.num_nodes = 4;
    cluster_ = std::make_unique<cluster::Cluster>(&engine, cc);
    dfs = std::make_unique<cluster::Dfs>(cluster_.get());
    env = std::make_unique<sponge::SpongeEnv>(cluster_.get(), dfs.get(),
                                              sponge::SpongeConfig{});
    tracker = std::make_unique<JobTracker>(env.get(), dfs.get());
  }

  Result<JobResult> RunJob(JobConfig config) {
    Result<JobResult> result = JobResult{};
    auto run = [](JobTracker* jt, JobConfig jc,
                  Result<JobResult>* out) -> sim::Task<> {
      *out = co_await jt->Run(std::move(jc));
    };
    engine.Spawn(run(tracker.get(), std::move(config), &result));
    engine.Run();
    return result;
  }
};

// Which node holds every "hot" file (they hash identically by name only
// if the names collide; instead just read back the block locations).
size_t LocationOf(cluster::Dfs* dfs, const std::string& name) {
  return *dfs->BlockLocation(name, 0);
}

TEST(DelaySchedulingTest, RelaxationSpreadsHotNodeWork) {
  SchedFixture f;
  HotNodeInput input(f.dfs.get(), 12, MiB(32));
  // Files hash to different nodes; count how many land on each. The test
  // only needs *some* node to be oversubscribed relative to its 2 slots.
  JobConfig config;
  config.input = &input;
  config.locality_wait = Seconds(2);
  auto result = f.RunJob(std::move(config));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  size_t local = 0;
  size_t remote = 0;
  for (size_t i = 0; i < result->map_tasks.size(); ++i) {
    size_t preferred = LocationOf(f.dfs.get(), input.names_[i]);
    if (result->map_tasks[i].node == preferred) {
      ++local;
      EXPECT_TRUE(result->map_tasks[i].data_local);
    } else {
      ++remote;
      EXPECT_FALSE(result->map_tasks[i].data_local);
    }
  }
  EXPECT_EQ(local + remote, 12u);
}

TEST(DelaySchedulingTest, StrictLocalityNeverMigrates) {
  SchedFixture f;
  HotNodeInput input(f.dfs.get(), 12, MiB(32));
  JobConfig config;
  config.input = &input;
  config.locality_wait = 0;  // disable relaxation
  auto result = f.RunJob(std::move(config));
  ASSERT_TRUE(result.ok());
  for (size_t i = 0; i < result->map_tasks.size(); ++i) {
    EXPECT_TRUE(result->map_tasks[i].data_local);
    EXPECT_EQ(result->map_tasks[i].node,
              LocationOf(f.dfs.get(), input.names_[i]));
  }
}

TEST(DelaySchedulingTest, MigrationImprovesHotNodeMakespan) {
  // Force genuine hotness: pick a name set that all hash to one node by
  // filtering candidate names.
  SchedFixture probe;
  std::vector<std::string> hot_names;
  size_t hot_node = 0;
  {
    // Find 8 file names whose first block lands on the same node.
    int counter = 0;
    while (hot_names.size() < 8 && counter < 10000) {
      std::string name = "probe" + std::to_string(counter++);
      (void)probe.dfs->CreateFile(name, MiB(32));
      size_t node = LocationOf(probe.dfs.get(), name);
      if (hot_names.empty()) hot_node = node;
      if (node == hot_node) hot_names.push_back(name);
    }
  }
  ASSERT_EQ(hot_names.size(), 8u);

  auto run_with = [&](Duration wait) {
    SchedFixture f;
    for (const auto& name : hot_names) {
      (void)f.dfs->CreateFile(name, MiB(32));
    }
    class Named : public InputFormat {
     public:
      Named(std::vector<std::string> names) : names_(std::move(names)) {}
      std::vector<InputSplit> Splits() override {
        std::vector<InputSplit> out;
        for (const auto& name : names_) {
          InputSplit split;
          split.dfs_file = name;
          split.bytes = MiB(32);
          out.push_back(std::move(split));
        }
        return out;
      }
      std::vector<std::string> names_;
    };
    Named input(hot_names);
    JobConfig config;
    config.input = &input;
    config.locality_wait = wait;
    // CPU-bound tasks (4 s of scan work per split): otherwise the hot
    // node's single disk is the bottleneck and migration cannot help.
    config.map_scan_bandwidth = 8.0 * 1024 * 1024;
    auto result = f.RunJob(std::move(config));
    EXPECT_TRUE(result.ok());
    return result.ok() ? result->runtime : Duration{0};
  };

  Duration strict = run_with(0);
  Duration relaxed = run_with(Seconds(1));
  // 8 tasks on one 2-slot node = 4 waves strictly; relaxation uses the
  // other 6 slots.
  EXPECT_LT(relaxed, strict);
}

}  // namespace
}  // namespace spongefiles::mapred
