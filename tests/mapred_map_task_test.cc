#include <gtest/gtest.h>

#include <memory>

#include "cluster/cluster.h"
#include "cluster/dfs.h"
#include "common/table.h"
#include "common/units.h"
#include "mapred/job_tracker.h"
#include "mapred/map_task.h"
#include "sim/engine.h"
#include "sponge/sponge_env.h"

namespace spongefiles::mapred {
namespace {

struct MapFixture {
  sim::Engine engine;
  std::unique_ptr<cluster::Cluster> cluster_;
  std::unique_ptr<cluster::Dfs> dfs;
  std::unique_ptr<sponge::SpongeEnv> env;

  MapFixture() {
    cluster::ClusterConfig cc;
    cc.num_nodes = 2;
    cluster_ = std::make_unique<cluster::Cluster>(&engine, cc);
    dfs = std::make_unique<cluster::Dfs>(cluster_.get());
    env = std::make_unique<sponge::SpongeEnv>(cluster_.get(), dfs.get(),
                                              sponge::SpongeConfig{});
    (void)dfs->CreateFile("input", MiB(64));
  }

  // Runs one map task over `records` with the given config knobs and
  // returns (output, stats).
  std::pair<MapOutput, TaskStats> RunMap(std::vector<Record> records,
                                         JobConfig* config) {
    InputSplit split;
    split.dfs_file = "input";
    split.offset = 0;
    split.bytes = MiB(64);
    split.generate = [records]() { return records; };
    MapOutput output;
    TaskStats stats;
    Status status;
    AttemptSet attempts;
    TaskAttempt* attempt = attempts.Launch(env.get(), config->name,
                                           TaskKind::kMap, /*task_index=*/0,
                                           /*node=*/0, /*backup=*/false);
    auto run = [&]() -> sim::Task<> {
      MapTask task(env.get(), dfs.get(), config, &split, attempt);
      Result<MapAttemptResult> result = co_await task.Run();
      status = result.status();
      if (result.ok()) {
        output = std::move(result->output);
        stats = std::move(result->stats);
      }
    };
    engine.Spawn(run());
    engine.Run();
    attempts.Finish(env.get(), attempt);
    EXPECT_TRUE(status.ok()) << status.ToString();
    return {std::move(output), std::move(stats)};
  }
};

std::vector<Record> ReverseSortedRecords(int n, uint64_t size) {
  std::vector<Record> records;
  for (int i = n - 1; i >= 0; --i) {
    Record r;
    r.key = StrFormat("key%06d", i);
    r.number = i;
    r.size = size;
    records.push_back(std::move(r));
  }
  return records;
}

sim::Task<> DrainSorted(SpillFile* file, std::vector<Record>* out) {
  RecordParser parser;
  while (true) {
    auto chunk = co_await file->ReadNext();
    if (!chunk.ok() || chunk->empty()) break;
    parser.Feed(*chunk);
    Record r;
    while (parser.Next(&r)) out->push_back(r);
  }
}

TEST(MapTaskTest, OutputIsSortedByKey) {
  MapFixture f;
  JobConfig config;
  config.num_reducers = 1;
  auto [output, stats] = f.RunMap(ReverseSortedRecords(500, 2000), &config);
  ASSERT_EQ(output.partitions.size(), 1u);
  ASSERT_NE(output.partitions[0], nullptr);
  std::vector<Record> drained;
  auto run = [&]() -> sim::Task<> {
    co_await DrainSorted(output.partitions[0].get(), &drained);
  };
  f.engine.Spawn(run());
  f.engine.Run();
  ASSERT_EQ(drained.size(), 500u);
  for (size_t i = 1; i < drained.size(); ++i) {
    EXPECT_LE(drained[i - 1].key, drained[i].key);
  }
}

TEST(MapTaskTest, SmallSortBufferSpillsAndMerges) {
  MapFixture f;
  JobConfig config;
  config.num_reducers = 1;
  config.io_sort_mb = 200 * 1000;  // ~100 records per spill
  auto [output, stats] = f.RunMap(ReverseSortedRecords(1000, 2000), &config);
  // Multiple spills happened and were merged into one sorted output.
  EXPECT_GT(stats.spill.files_created, 5u);
  std::vector<Record> drained;
  auto run = [&]() -> sim::Task<> {
    co_await DrainSorted(output.partitions[0].get(), &drained);
  };
  f.engine.Spawn(run());
  f.engine.Run();
  ASSERT_EQ(drained.size(), 1000u);
  for (size_t i = 1; i < drained.size(); ++i) {
    EXPECT_LE(drained[i - 1].key, drained[i].key);
  }
  // Intermediate spill files were deleted after the merge; only the
  // output file's space remains on disk.
  EXPECT_EQ(f.cluster_->node(0).fs().file_count(), 1u);
}

TEST(MapTaskTest, PartitionsSplitByPartitioner) {
  MapFixture f;
  JobConfig config;
  config.num_reducers = 4;
  config.partitioner = [](const Record& r, int) {
    return static_cast<size_t>(static_cast<int>(r.number)) % 4;
  };
  auto [output, stats] = f.RunMap(ReverseSortedRecords(400, 1500), &config);
  ASSERT_EQ(output.partitions.size(), 4u);
  for (size_t p = 0; p < 4; ++p) {
    ASSERT_NE(output.partitions[p], nullptr) << p;
    EXPECT_EQ(output.partition_records[p], 100u);
  }
}

TEST(MapTaskTest, EmptyPartitionsAreNull) {
  MapFixture f;
  JobConfig config;
  config.num_reducers = 3;
  config.partitioner = [](const Record&, int) { return size_t{1}; };
  auto [output, stats] = f.RunMap(ReverseSortedRecords(50, 1000), &config);
  EXPECT_EQ(output.partitions[0], nullptr);
  ASSERT_NE(output.partitions[1], nullptr);
  EXPECT_EQ(output.partitions[2], nullptr);
}

TEST(MapTaskTest, MapFunctionCanExplodeRecords) {
  MapFixture f;
  JobConfig config;
  config.num_reducers = 1;
  config.map_fn = [](const Record& in, std::vector<Record>* out) {
    // Emit two records per input (word-splitting style).
    for (int copy = 0; copy < 2; ++copy) {
      Record r = in;
      r.key += copy == 0 ? ".a" : ".b";
      out->push_back(std::move(r));
    }
  };
  auto [output, stats] = f.RunMap(ReverseSortedRecords(100, 1000), &config);
  EXPECT_EQ(output.partition_records[0], 200u);
  EXPECT_EQ(stats.input_records, 100u);
}

TEST(MapTaskTest, ChargesInputBytesAndRuntime) {
  MapFixture f;
  JobConfig config;
  config.num_reducers = 1;
  auto [output, stats] = f.RunMap(ReverseSortedRecords(10, 1000), &config);
  EXPECT_EQ(stats.input_bytes, MiB(64));
  EXPECT_GT(stats.runtime, 0);
  EXPECT_EQ(stats.node, 0u);
}

}  // namespace
}  // namespace spongefiles::mapred
