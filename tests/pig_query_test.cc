#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "cluster/cluster.h"
#include "cluster/dfs.h"
#include "common/random.h"
#include "common/units.h"
#include "mapred/job_tracker.h"
#include "pig/query.h"
#include "pig/udfs.h"
#include "sim/engine.h"
#include "sponge/sponge_env.h"

namespace spongefiles::pig {
namespace {

// Shared with mapred tests: fixed records per split over a DFS file.
class TestInput : public mapred::InputFormat {
 public:
  TestInput(cluster::Dfs* dfs, std::string name,
            std::vector<std::vector<mapred::Record>> splits,
            uint64_t split_bytes)
      : name_(std::move(name)),
        records_(std::move(splits)),
        split_bytes_(split_bytes) {
    (void)dfs->CreateFile(name_, split_bytes_ * records_.size());
  }

  std::vector<mapred::InputSplit> Splits() override {
    std::vector<mapred::InputSplit> out;
    for (size_t i = 0; i < records_.size(); ++i) {
      mapred::InputSplit split;
      split.dfs_file = name_;
      split.offset = i * split_bytes_;
      split.bytes = split_bytes_;
      const std::vector<mapred::Record>* records = &records_[i];
      split.generate = [records]() { return *records; };
      out.push_back(std::move(split));
    }
    return out;
  }

 private:
  std::string name_;
  std::vector<std::vector<mapred::Record>> records_;
  uint64_t split_bytes_;
};

struct PigFixture {
  sim::Engine engine;
  std::unique_ptr<cluster::Cluster> cluster_;
  std::unique_ptr<cluster::Dfs> dfs;
  std::unique_ptr<sponge::SpongeEnv> env;
  std::unique_ptr<mapred::JobTracker> tracker;

  explicit PigFixture(uint64_t heap = MiB(8)) {
    cluster::ClusterConfig cc;
    cc.num_nodes = 4;
    cc.node.heap_per_slot = heap;
    cc.node.sponge_memory = MiB(64);
    cluster_ = std::make_unique<cluster::Cluster>(&engine, cc);
    dfs = std::make_unique<cluster::Dfs>(cluster_.get());
    env = std::make_unique<sponge::SpongeEnv>(cluster_.get(), dfs.get(),
                                              sponge::SpongeConfig{});
    tracker = std::make_unique<mapred::JobTracker>(env.get(), dfs.get());
    auto prime = [](sponge::MemoryTracker* t) -> sim::Task<> {
      co_await t->PollOnce();
    };
    engine.Spawn(prime(&env->tracker()));
    engine.Run();
  }

  Result<mapred::JobResult> RunJob(mapred::JobConfig config) {
    Result<mapred::JobResult> result = mapred::JobResult{};
    auto run = [](mapred::JobTracker* jt, mapred::JobConfig jc,
                  Result<mapred::JobResult>* out) -> sim::Task<> {
      *out = co_await jt->Run(std::move(jc));
    };
    engine.Spawn(run(tracker.get(), std::move(config), &result));
    engine.Run();
    return result;
  }
};

// Pages with a language field and anchortext terms; term frequencies are
// planted so the exact top-k is known.
std::vector<std::vector<mapred::Record>> AnchortextSplits() {
  std::vector<std::vector<mapred::Record>> splits(3);
  Rng rng(42);
  for (size_t s = 0; s < splits.size(); ++s) {
    for (int i = 0; i < 400; ++i) {
      mapred::Record page;
      page.fields.clear();
      bool english = (i % 4) != 0;  // 75% english
      page.key = english ? "english" : "french";
      // Planted frequencies: "home" on every page, "news" on every 2nd,
      // "blog" on every 4th, plus unique noise terms.
      page.fields.push_back("home");
      if (i % 2 == 0) page.fields.push_back("news");
      if (i % 4 == 0) page.fields.push_back("blog");
      page.fields.push_back("noise" + std::to_string(rng.Next() % 100000));
      page.number = 0;
      page.size = 4000;
      splits[s].push_back(std::move(page));
    }
  }
  return splits;
}

TEST(PigQueryTest, FrequentAnchortextTopKExact) {
  PigFixture f;
  auto splits = AnchortextSplits();
  TestInput input(f.dfs.get(), "web", std::move(splits), MiB(8));
  GroupByQuery query;
  query.name = "frequent-anchortext";
  query.input = &input;
  query.group_key = [](const mapred::Record& r) { return r.key; };
  // Projection: keep only the term fields (shrink logical size).
  query.project = [](const mapred::Record& r) {
    mapred::Record out = r;
    out.size = 200;
    return out;
  };
  query.udf_factory = [] { return std::make_unique<TopKUdf>(3); };
  auto result = f.RunJob(Compile(query));
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // english pages: 3 splits x 300 = 900 pages -> home=900, news=450(ish),
  // blog=0 for english? i%4==0 pages are french, so blog is french-only.
  std::map<std::string, std::map<std::string, double>> top;
  for (const mapred::Record& r : result->output) {
    top[r.key][r.fields[0]] = r.number;
  }
  ASSERT_TRUE(top.contains("english"));
  ASSERT_TRUE(top.contains("french"));
  // english pages: i % 4 != 0 -> 300/split; of those, "news" appears when
  // i is even, i.e. i % 4 == 2 -> 100/split. french pages (i % 4 == 0,
  // 100/split) are all even, so every french page has "news" and "blog".
  EXPECT_EQ(top["english"]["home"], 900);
  EXPECT_EQ(top["english"]["news"], 300);
  EXPECT_EQ(top["french"]["home"], 300);
  EXPECT_EQ(top["french"]["news"], 300);
  EXPECT_EQ(top["french"]["blog"], 300);
}

TEST(PigQueryTest, SpamQuantilesExactOrderStatistics) {
  PigFixture f;
  // One domain with spam scores 0..999 shuffled across splits.
  std::vector<std::vector<mapred::Record>> splits(4);
  Rng rng(7);
  std::vector<int> scores(1000);
  for (int i = 0; i < 1000; ++i) scores[i] = i;
  for (int i = 999; i > 0; --i) {
    std::swap(scores[i], scores[rng.Uniform(static_cast<uint64_t>(i + 1))]);
  }
  for (int i = 0; i < 1000; ++i) {
    mapred::Record page;
    page.key = "bigdomain.com";
    page.number = scores[i];
    page.size = 10000;  // full unprojected tuple
    splits[i % 4].push_back(std::move(page));
  }
  TestInput input(f.dfs.get(), "crawl", std::move(splits), MiB(8));
  GroupByQuery query;
  query.name = "spam-quantiles";
  query.input = &input;
  query.group_key = [](const mapred::Record& r) { return r.key; };
  // No projection: the hastily-written-UDF pattern.
  query.udf_factory = [] { return std::make_unique<SpamQuantilesUdf>(); };
  auto result = f.RunJob(Compile(query));
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  std::map<std::string, double> quantiles;
  for (const mapred::Record& r : result->output) {
    quantiles[r.fields[0]] = r.number;
  }
  EXPECT_EQ(quantiles["q0"], 0);
  EXPECT_EQ(quantiles["q25"], 249);  // floor(0.25 * 999)
  EXPECT_EQ(quantiles["q50"], 499);
  EXPECT_EQ(quantiles["q75"], 749);
  EXPECT_EQ(quantiles["q100"], 999);
}

TEST(PigQueryTest, MedianJobExact) {
  PigFixture f;
  // Numbers 1..2001 scattered over splits; median = 1001.
  std::vector<std::vector<mapred::Record>> splits(4);
  for (int i = 1; i <= 2001; ++i) {
    mapred::Record r;
    r.key = "";
    r.number = i;
    r.size = 3000;
    splits[static_cast<size_t>(i) % 4].push_back(std::move(r));
  }
  TestInput input(f.dfs.get(), "numbers", std::move(splits), MiB(8));
  mapred::JobConfig config;
  config.name = "median";
  config.input = &input;
  config.reducer_factory = [] { return std::make_unique<MedianReducer>(); };
  auto result = f.RunJob(std::move(config));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->output.size(), 1u);
  EXPECT_EQ(result->output[0].key, "median");
  EXPECT_EQ(result->output[0].number, 1001);
}

TEST(PigQueryTest, SpongeSpillingProducesSameAnswers) {
  auto median_with = [](mapred::SpillMode mode) {
    PigFixture f(/*heap=*/MiB(2));  // force spilling
    std::vector<std::vector<mapred::Record>> splits(4);
    for (int i = 1; i <= 2001; ++i) {
      mapred::Record r;
      r.number = i;
      r.size = 3000;
      splits[static_cast<size_t>(i) % 4].push_back(std::move(r));
    }
    TestInput input(f.dfs.get(), "numbers", std::move(splits), MiB(8));
    mapred::JobConfig config;
    config.input = &input;
    config.spill_mode = mode;
    config.reducer_factory = [] {
      return std::make_unique<MedianReducer>();
    };
    auto result = f.RunJob(std::move(config));
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_GT(result->straggler()->spill.bytes_spilled, 0u);
    return result->output[0].number;
  };
  EXPECT_EQ(median_with(mapred::SpillMode::kDisk), 1001);
  EXPECT_EQ(median_with(mapred::SpillMode::kSponge), 1001);
}

TEST(PigQueryTest, MultiPassUdfSpillsMoreThanInput) {
  // The Table 2 effect: a holistic multi-pass UDF on a spilled bag writes
  // its data multiple times.
  PigFixture f(/*heap=*/MiB(2));
  std::vector<std::vector<mapred::Record>> splits(2);
  for (int i = 0; i < 2000; ++i) {
    mapred::Record page;
    page.key = "english";
    page.fields = {"home", "term" + std::to_string(i % 50)};
    page.size = 5000;
    splits[static_cast<size_t>(i) % 2].push_back(std::move(page));
  }
  uint64_t input_bytes = 2000ull * 5000;
  TestInput input(f.dfs.get(), "web2", std::move(splits), MiB(8));
  GroupByQuery query;
  query.input = &input;
  query.group_key = [](const mapred::Record& r) { return r.key; };
  query.udf_factory = [] { return std::make_unique<TopKUdf>(5); };
  auto result = f.RunJob(Compile(query));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Shuffle spill (~1x) + bag spill (~1x) + pass-1 respill (~1x) -> ~3x.
  EXPECT_GT(result->straggler()->spill.bytes_spilled, 2 * input_bytes);
}

}  // namespace
}  // namespace spongefiles::pig
