#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "lint/lexer.h"
#include "lint/token.h"

namespace spongefiles::lint {
namespace {

// Tokens without the trailing kEndOfFile, as "kind:text" strings.
std::vector<std::string> Dump(const std::string& source) {
  LexResult lex = Lex(source);
  std::vector<std::string> out;
  for (const Token& t : lex.tokens) {
    if (t.kind == TokenKind::kEndOfFile) break;
    const char* kind = "?";
    switch (t.kind) {
      case TokenKind::kIdentifier: kind = "id"; break;
      case TokenKind::kNumber: kind = "num"; break;
      case TokenKind::kString: kind = "str"; break;
      case TokenKind::kCharLiteral: kind = "chr"; break;
      case TokenKind::kPunct: kind = "op"; break;
      case TokenKind::kPreprocessor: kind = "pp"; break;
      case TokenKind::kEndOfFile: kind = "eof"; break;
    }
    out.push_back(std::string(kind) + ":" + t.text);
  }
  return out;
}

TEST(LexerTest, IdentifiersNumbersAndPunct) {
  EXPECT_EQ(Dump("int x = 42;"),
            (std::vector<std::string>{"id:int", "id:x", "op:=", "num:42",
                                      "op:;"}));
}

TEST(LexerTest, LongestMunchOperators) {
  // `&&` is one token (an rvalue reference, not two refs); `>>` is one
  // token (the analyzer treats it as closing two template levels).
  EXPECT_EQ(Dump("a && b & c >> d"),
            (std::vector<std::string>{"id:a", "op:&&", "id:b", "op:&", "id:c",
                                      "op:>>", "id:d"}));
  EXPECT_EQ(Dump("x += y->z::w"),
            (std::vector<std::string>{"id:x", "op:+=", "id:y", "op:->", "id:z",
                                      "op:::", "id:w"}));
}

TEST(LexerTest, DigitSeparatorsAndFloats) {
  EXPECT_EQ(Dump("1'000'000 3.5e-2"),
            (std::vector<std::string>{"num:1'000'000", "num:3.5e-2"}));
}

TEST(LexerTest, StringsAndCharLiterals) {
  EXPECT_EQ(Dump("\"a\\\"b\" 'x'"),
            (std::vector<std::string>{"str:a\\\"b", "chr:x"}));
}

TEST(LexerTest, RawStringWithDelimiter) {
  // The quote and paren inside the raw string must not end it.
  EXPECT_EQ(Dump("R\"sep(a \" ) b)sep\" done"),
            (std::vector<std::string>{"str:a \" ) b", "id:done"}));
}

TEST(LexerTest, CommentsAreRecordedOnTheSide) {
  LexResult lex = Lex("int a; // trailing note\n/* block */ int b;\n");
  ASSERT_EQ(lex.comments.size(), 2u);
  EXPECT_EQ(lex.comments[0].line, 1);
  EXPECT_EQ(lex.comments[0].text, " trailing note");
  EXPECT_EQ(lex.comments[1].line, 2);
  // Comments never appear in the token stream.
  for (const Token& t : lex.tokens) {
    EXPECT_NE(t.text.find("note"), 0u);
  }
}

TEST(LexerTest, MultiLineBlockCommentAttributesEveryLine) {
  LexResult lex = Lex("/* one\n two\n three */ int x;\n");
  ASSERT_EQ(lex.comments.size(), 3u);
  EXPECT_EQ(lex.comments[0].line, 1);
  EXPECT_EQ(lex.comments[2].line, 3);
  ASSERT_GE(lex.tokens.size(), 2u);
  EXPECT_TRUE(lex.tokens[0].ident("int"));
  EXPECT_EQ(lex.tokens[0].line, 3);
}

TEST(LexerTest, PreprocessorDirectiveIsOneToken) {
  LexResult lex = Lex("#include <mutex>\nint x;\n");
  ASSERT_GE(lex.tokens.size(), 1u);
  EXPECT_EQ(lex.tokens[0].kind, TokenKind::kPreprocessor);
  EXPECT_EQ(lex.tokens[0].text, "#include <mutex>");
  EXPECT_TRUE(lex.tokens[1].ident("int"));
  EXPECT_EQ(lex.tokens[1].line, 2);
}

TEST(LexerTest, PreprocessorContinuationJoinsLines) {
  LexResult lex = Lex("#define PLUS(a, b) \\\n  ((a) + (b))\nint y;\n");
  EXPECT_EQ(lex.tokens[0].kind, TokenKind::kPreprocessor);
  EXPECT_NE(lex.tokens[0].text.find("((a) + (b))"), std::string::npos);
  // The token after the directive is on the line past the continuation.
  EXPECT_TRUE(lex.tokens[1].ident("int"));
  EXPECT_EQ(lex.tokens[1].line, 3);
}

TEST(LexerTest, UnterminatedLiteralDoesNotAbort) {
  LexResult lex = Lex("const char* s = \"never closed");
  ASSERT_FALSE(lex.tokens.empty());
  EXPECT_EQ(lex.tokens.back().kind, TokenKind::kEndOfFile);
}

TEST(LexerTest, LineNumbersAreOneBased) {
  LexResult lex = Lex("a\nb\n\nc\n");
  ASSERT_GE(lex.tokens.size(), 3u);
  EXPECT_EQ(lex.tokens[0].line, 1);
  EXPECT_EQ(lex.tokens[1].line, 2);
  EXPECT_EQ(lex.tokens[2].line, 4);
}

}  // namespace
}  // namespace spongefiles::lint
