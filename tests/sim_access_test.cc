// Tests for the access-set recorder (the dynamic half of the shard-safety
// analysis; the static half lives in lint_shard_test.cc). Each test drives
// a real engine in instrumented mode and asserts on the census — the same
// artifact tools/shardcheck.sh gates on.

#include "sim/access.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/engine.h"
#include "sim/task.h"

namespace spongefiles::sim {
namespace {

using Home = AccessRecorder::Home;

// One instrumented event: sleep to `at`, anchor at `anchor_node` (the
// recorder derives an event's home from its first non-global touch), then
// touch the shared object.
Task<> TouchAt(Engine* engine, Duration at, int* anchor, size_t anchor_node,
               int* shared, bool write) {
  co_await engine->Delay(at);
  SIM_READ(engine, anchor, "Anchor", "id",
           AccessRecorder::NodeDomain(anchor_node));
  SIM_ACCESS(engine, shared, "Shared", "state", write,
             AccessRecorder::NodeDomain(0));
}

TEST(AccessRecorderTest, CrossNodeConflictWithinLookaheadIsReported) {
  Engine engine;
  AccessRecorder rec;
  engine.RecordAccessSets(&rec);
  int anchor0 = 0, anchor1 = 0, shared = 0;
  // A write from a node0-homed event, then a read from a node1-homed event
  // 100us later — inside the 300us node lookahead, so the parallel engine
  // could interleave them.
  engine.Spawn(TouchAt(&engine, 0, &anchor0, 0, &shared, /*write=*/true));
  engine.Spawn(TouchAt(&engine, Micros(100), &anchor1, 1, &shared,
                       /*write=*/false));
  engine.Run();
  rec.Finish();
  ASSERT_EQ(rec.unexplained_conflicts(), 1u);
  const AccessRecorder::Conflict& c = rec.census().conflicts[0];
  EXPECT_EQ(c.object, "Shared@node0");
  EXPECT_EQ(c.group, "state");
  EXPECT_EQ(c.projection, "node");
  EXPECT_EQ(c.home_a, "node0");
  EXPECT_EQ(c.home_b, "node1");
  EXPECT_TRUE(c.write_a);
  EXPECT_FALSE(c.write_b);
  EXPECT_EQ(c.time_b - c.time_a, Micros(100));
  // The census JSON carries the go/no-go number.
  EXPECT_NE(rec.CensusJson().find("\"unexplained_conflicts\": 1"),
            std::string::npos);
}

TEST(AccessRecorderTest, PairAtLookaheadBoundaryIsCausal) {
  // At exactly one lookahead apart the pair is causally ordered — a
  // message sent by the first event has already arrived — so the parallel
  // engine can never interleave them and no conflict is reported.
  Engine engine;
  AccessRecorder rec;
  engine.RecordAccessSets(&rec);
  int anchor0 = 0, anchor1 = 0, shared = 0;
  engine.Spawn(TouchAt(&engine, 0, &anchor0, 0, &shared, /*write=*/true));
  engine.Spawn(TouchAt(&engine, Micros(300), &anchor1, 1, &shared,
                       /*write=*/false));
  engine.Run();
  rec.Finish();
  EXPECT_EQ(rec.unexplained_conflicts(), 0u);
}

TEST(AccessRecorderTest, RackProjectionUsesRackLookahead) {
  // 400us apart: outside the node lookahead (300us) but inside the rack
  // lookahead (500us). With the two anchors in different racks the pair
  // only conflicts under the rack-sharded projection.
  Engine engine;
  AccessRecorder rec;
  rec.SetRacks({0, 1});  // node0 -> rack0, node1 -> rack1
  engine.RecordAccessSets(&rec);
  int anchor0 = 0, anchor1 = 0, shared = 0;
  engine.Spawn(TouchAt(&engine, 0, &anchor0, 0, &shared, /*write=*/true));
  engine.Spawn(TouchAt(&engine, Micros(400), &anchor1, 1, &shared,
                       /*write=*/true));
  engine.Run();
  rec.Finish();
  ASSERT_EQ(rec.unexplained_conflicts(), 1u);
  const AccessRecorder::Conflict& c = rec.census().conflicts[0];
  EXPECT_EQ(c.projection, "rack");
  EXPECT_EQ(c.home_a, "rack0");
  EXPECT_EQ(c.home_b, "rack1");
  EXPECT_TRUE(c.write_a);
  EXPECT_TRUE(c.write_b);
}

TEST(AccessRecorderTest, SameHomeEventsNeverConflict) {
  // Two events on the same shard are serialized by that shard's loop no
  // matter how close their timestamps are.
  Engine engine;
  AccessRecorder rec;
  engine.RecordAccessSets(&rec);
  int anchor_a = 0, anchor_b = 0, shared = 0;
  engine.Spawn(TouchAt(&engine, 0, &anchor_a, 0, &shared, /*write=*/true));
  engine.Spawn(TouchAt(&engine, Micros(50), &anchor_b, 0, &shared,
                       /*write=*/true));
  engine.Run();
  rec.Finish();
  EXPECT_EQ(rec.unexplained_conflicts(), 0u);
  EXPECT_EQ(rec.census().touched_events, 2u);
}

Task<> TouchGlobal(Engine* engine, Duration at, int* anchor, size_t node,
                   int* board, bool write) {
  co_await engine->Delay(at);
  SIM_READ(engine, anchor, "Anchor", "id", AccessRecorder::NodeDomain(node));
  SIM_ACCESS(engine, board, "Board", "flag", write,
             AccessRecorder::GlobalDomain("sanctioned oracle"));
}

TEST(AccessRecorderTest, GlobalObjectsAreCensusedNeverConflicted) {
  Engine engine;
  AccessRecorder rec;
  engine.RecordAccessSets(&rec);
  int anchor0 = 0, anchor1 = 0, board = 0;
  // Write and read of a declared-global object from two homes, well inside
  // the lookahead: explained shared state, not a conflict.
  engine.Spawn(TouchGlobal(&engine, 0, &anchor0, 0, &board, /*write=*/true));
  engine.Spawn(TouchGlobal(&engine, Micros(100), &anchor1, 1, &board,
                           /*write=*/false));
  engine.Run();
  rec.Finish();
  EXPECT_EQ(rec.unexplained_conflicts(), 0u);
  EXPECT_EQ(rec.census().global_accesses, 2u);
  auto it = rec.census().global_objects.find("Board@global");
  ASSERT_NE(it, rec.census().global_objects.end());
  EXPECT_EQ(it->second, "sanctioned oracle");
}

Task<> ReadThenWrite(Engine* engine, int* anchor, int* shared) {
  co_await engine->Delay(0);
  SIM_READ(engine, anchor, "Anchor", "id", AccessRecorder::NodeDomain(0));
  SIM_READ(engine, shared, "Shared", "state", AccessRecorder::NodeDomain(0));
  SIM_WRITE(engine, shared, "Shared", "state", AccessRecorder::NodeDomain(0));
}

TEST(AccessRecorderTest, WithinEventDedupKeepsStrongestKind) {
  // One event reads then writes the same (object, group): its footprint is
  // a single write entry, so a later cross-home read sees exactly one
  // conflict, with write_a = true.
  Engine engine;
  AccessRecorder rec;
  engine.RecordAccessSets(&rec);
  int anchor0 = 0, anchor1 = 0, shared = 0;
  engine.Spawn(ReadThenWrite(&engine, &anchor0, &shared));
  engine.Spawn(TouchAt(&engine, Micros(100), &anchor1, 1, &shared,
                       /*write=*/false));
  engine.Run();
  rec.Finish();
  ASSERT_EQ(rec.unexplained_conflicts(), 1u);
  EXPECT_TRUE(rec.census().conflicts[0].write_a);
  EXPECT_EQ(rec.census().accesses, 5u);  // raw touches, before dedup
}

Task<> TouchTwoNodes(Engine* engine, int* a, int* b) {
  co_await engine->Delay(Micros(10));
  SIM_WRITE(engine, a, "A", "x", AccessRecorder::NodeDomain(0));
  SIM_WRITE(engine, b, "B", "x", AccessRecorder::NodeDomain(1));
}

TEST(AccessRecorderTest, MultiHomedEventIsCensusedAsSplit) {
  // An event touching state homed at two nodes marks a point the parallel
  // port must cut with a message; the census counts it.
  Engine engine;
  AccessRecorder rec;
  engine.RecordAccessSets(&rec);
  int a = 0, b = 0;
  engine.Spawn(TouchTwoNodes(&engine, &a, &b));
  engine.Run();
  rec.Finish();
  EXPECT_EQ(rec.census().split_events, 1u);
  EXPECT_EQ(rec.unexplained_conflicts(), 0u);
}

TEST(AccessRecorderTest, RecordingIsOffByDefault) {
  Engine engine;
  EXPECT_EQ(engine.access_recorder(), nullptr);
  // The hooks are a pointer load and a branch when no recorder is set.
  int obj = 0;
  SIM_WRITE(&engine, &obj, "Obj", "x", AccessRecorder::NodeDomain(0));
}

TEST(AccessRecorderTest, DetachingStopsRecording) {
  Engine engine;
  AccessRecorder rec;
  engine.RecordAccessSets(&rec);
  int anchor = 0, shared = 0;
  engine.Spawn(TouchAt(&engine, 0, &anchor, 0, &shared, /*write=*/true));
  engine.Run();
  rec.Finish();
  const uint64_t events = rec.census().events;
  EXPECT_GT(events, 0u);
  engine.RecordAccessSets(nullptr);
  engine.Spawn(TouchAt(&engine, Micros(10), &anchor, 0, &shared,
                       /*write=*/true));
  engine.Run();
  EXPECT_EQ(rec.census().events, events);
}

TEST(AccessRecorderTest, CensusJsonIsDeterministic) {
  auto run = [] {
    Engine engine;
    AccessRecorder rec;
    engine.RecordAccessSets(&rec);
    int anchor0 = 0, anchor1 = 0, shared = 0, board = 0;
    engine.Spawn(TouchAt(&engine, 0, &anchor0, 0, &shared, true));
    engine.Spawn(TouchAt(&engine, Micros(100), &anchor1, 1, &shared, false));
    engine.Spawn(TouchGlobal(&engine, Micros(5), &anchor0, 0, &board, true));
    engine.Run();
    rec.Finish();
    return rec.CensusJson();
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace spongefiles::sim
