#include <gtest/gtest.h>

#include <memory>

#include "cluster/cluster.h"
#include "cluster/dfs.h"
#include "common/units.h"
#include "mapred/merger.h"
#include "mapred/spill.h"
#include "sim/engine.h"
#include "sponge/sponge_env.h"

namespace spongefiles::mapred {
namespace {

struct MrFixture {
  sim::Engine engine;
  std::unique_ptr<cluster::Cluster> cluster_;
  std::unique_ptr<cluster::Dfs> dfs;
  std::unique_ptr<sponge::SpongeEnv> env;
  sponge::TaskContext task;

  MrFixture() {
    cluster::ClusterConfig cc;
    cc.num_nodes = 4;
    cc.node.sponge_memory = MiB(8);
    cluster_ = std::make_unique<cluster::Cluster>(&engine, cc);
    dfs = std::make_unique<cluster::Dfs>(cluster_.get());
    env = std::make_unique<sponge::SpongeEnv>(cluster_.get(), dfs.get(),
                                              sponge::SpongeConfig{});
    task = env->StartTask(0);
    auto prime = [](sponge::MemoryTracker* t) -> sim::Task<> {
      co_await t->PollOnce();
    };
    engine.Spawn(prime(&env->tracker()));
    engine.Run();
  }
};

Record MakeRecord(const std::string& key, double number, uint64_t size) {
  Record r;
  r.key = key;
  r.number = number;
  r.size = size;
  return r;
}

// Collects all records from a source.
sim::Task<> Drain(RecordSource* source, std::vector<Record>* out,
                  Status* status) {
  Record record;
  while (true) {
    auto has = co_await source->Next(&record);
    if (!has.ok()) {
      *status = has.status();
      co_return;
    }
    if (!*has) break;
    out->push_back(record);
  }
  *status = Status::OK();
}

TEST(SpillFileTest, DiskSpillRoundTrip) {
  MrFixture f;
  DiskSpiller spiller(&f.engine, &f.cluster_->node(0).fs(), "t");
  std::vector<Record> got;
  Status status;
  auto run = [&]() -> sim::Task<> {
    auto file = spiller.Create("run0");
    ByteRuns wire;
    for (int i = 0; i < 100; ++i) {
      SerializeRecord(MakeRecord("k" + std::to_string(i), i, 5000), &wire);
    }
    (void)co_await (*file)->Append(std::move(wire));
    (void)co_await (*file)->Close();
    SpillFileSource source(std::move(*file));
    co_await Drain(&source, &got, &status);
    co_await source.Done();
  };
  f.engine.Spawn(run());
  f.engine.Run();
  ASSERT_TRUE(status.ok()) << status.ToString();
  ASSERT_EQ(got.size(), 100u);
  EXPECT_EQ(got[7].key, "k7");
  EXPECT_EQ(spiller.stats().bytes_spilled, 100u * 5000);
  // Deleted on Done: no space leaked.
  EXPECT_EQ(f.cluster_->node(0).fs().used(), 0u);
}

TEST(SpillFileTest, SpongeSpillRoundTripAndStats) {
  MrFixture f;
  SpongeSpiller spiller(f.env.get(), &f.task, "t");
  std::vector<Record> got;
  Status status;
  auto run = [&]() -> sim::Task<> {
    auto file = spiller.Create("run0");
    ByteRuns wire;
    for (int i = 0; i < 1000; ++i) {
      SerializeRecord(MakeRecord("k", i, 5000), &wire);
    }
    (void)co_await (*file)->Append(std::move(wire));
    (void)co_await (*file)->Close();
    SpillFileSource source(std::move(*file));
    co_await Drain(&source, &got, &status);
    co_await source.Done();
  };
  f.engine.Spawn(run());
  f.engine.Run();
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(got.size(), 1000u);
  EXPECT_EQ(spiller.stats().bytes_spilled, 1000u * 5000);
  // ~5 MB through 1 MB chunks.
  EXPECT_EQ(spiller.stats().sponge_chunks, 5u);
  EXPECT_GT(spiller.stats().sponge_chunks_local, 0u);
  // Everything freed after Done().
  EXPECT_EQ(f.env->server(0).free_bytes(), MiB(8));
}

TEST(SpillFileTest, MemorySpillRewindable) {
  MrFixture f;
  Status status;
  std::vector<Record> first;
  std::vector<Record> second;
  auto run = [&]() -> sim::Task<> {
    MemorySpillFile file(&f.engine);
    ByteRuns wire;
    for (int i = 0; i < 10; ++i) {
      SerializeRecord(MakeRecord("k" + std::to_string(i), i, 200), &wire);
    }
    (void)co_await file.Append(std::move(wire));
    (void)co_await file.Close();
    while (true) {
      auto chunk = co_await file.ReadNext();
      if (chunk->empty()) break;
      RecordParser p;
      p.Feed(*chunk);
      Record r;
      while (p.Next(&r)) first.push_back(r);
    }
    EXPECT_TRUE(file.Rewind().ok());
    while (true) {
      auto chunk = co_await file.ReadNext();
      if (chunk->empty()) break;
      RecordParser p;
      p.Feed(*chunk);
      Record r;
      while (p.Next(&r)) second.push_back(r);
    }
    status = Status::OK();
  };
  f.engine.Spawn(run());
  f.engine.Run();
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(first.size(), 10u);
  EXPECT_EQ(first.size(), second.size());
}

TEST(MergeTest, TwoSortedRunsMergeInOrder) {
  MrFixture f;
  Status status;
  std::vector<Record> got;
  auto run = [&]() -> sim::Task<> {
    std::vector<std::unique_ptr<RecordSource>> inputs;
    inputs.push_back(std::make_unique<VectorSource>(std::vector<Record>{
        MakeRecord("a", 1, 50), MakeRecord("c", 3, 50),
        MakeRecord("e", 5, 50)}));
    inputs.push_back(std::make_unique<VectorSource>(std::vector<Record>{
        MakeRecord("b", 2, 50), MakeRecord("d", 4, 50)}));
    MergeStream merge(std::move(inputs));
    co_await Drain(&merge, &got, &status);
    co_await merge.Done();
  };
  f.engine.Spawn(run());
  f.engine.Run();
  ASSERT_TRUE(status.ok());
  ASSERT_EQ(got.size(), 5u);
  for (size_t i = 1; i < got.size(); ++i) {
    EXPECT_LE(got[i - 1].key, got[i].key);
  }
  EXPECT_EQ(got[0].key, "a");
  EXPECT_EQ(got[4].key, "e");
}

TEST(MergeTest, ManyRunsWithDuplicateKeys) {
  MrFixture f;
  Status status;
  std::vector<Record> got;
  auto run = [&]() -> sim::Task<> {
    std::vector<std::unique_ptr<RecordSource>> inputs;
    for (int s = 0; s < 8; ++s) {
      std::vector<Record> records;
      for (int k = 0; k < 20; ++k) {
        records.push_back(
            MakeRecord("key" + std::to_string(k / 2 * 2), s * 100 + k, 80));
      }
      std::sort(records.begin(), records.end(),
                [](const Record& a, const Record& b) { return a.key < b.key; });
      inputs.push_back(std::make_unique<VectorSource>(std::move(records)));
    }
    MergeStream merge(std::move(inputs));
    co_await Drain(&merge, &got, &status);
    co_await merge.Done();
  };
  f.engine.Spawn(run());
  f.engine.Run();
  ASSERT_TRUE(status.ok());
  ASSERT_EQ(got.size(), 160u);
  for (size_t i = 1; i < got.size(); ++i) {
    EXPECT_LE(got[i - 1].key, got[i].key);
  }
}

TEST(MergeTest, EmptyInputsHandled) {
  MrFixture f;
  Status status;
  std::vector<Record> got;
  auto run = [&]() -> sim::Task<> {
    std::vector<std::unique_ptr<RecordSource>> inputs;
    inputs.push_back(std::make_unique<VectorSource>(std::vector<Record>{}));
    inputs.push_back(std::make_unique<VectorSource>(
        std::vector<Record>{MakeRecord("z", 1, 50)}));
    MergeStream merge(std::move(inputs));
    co_await Drain(&merge, &got, &status);
    co_await merge.Done();
  };
  f.engine.Spawn(run());
  f.engine.Run();
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(got.size(), 1u);
}

TEST(MergeTest, WriteSortedRunSpillsAndReadsBack) {
  MrFixture f;
  DiskSpiller spiller(&f.engine, &f.cluster_->node(0).fs(), "wsr");
  Status status;
  std::vector<Record> got;
  auto run = [&]() -> sim::Task<> {
    std::vector<Record> records;
    for (int i = 0; i < 500; ++i) {
      records.push_back(MakeRecord("k" + std::to_string(i), i, 3000));
    }
    std::sort(records.begin(), records.end(),
              [](const Record& a, const Record& b) { return a.key < b.key; });
    std::vector<Record> expected = records;
    VectorSource source(std::move(records));
    auto file = co_await WriteSortedRun(&spiller, "run", &source);
    if (!file.ok()) {
      status = file.status();
      co_return;
    }
    EXPECT_EQ((*file)->size(), 500u * 3000);
    SpillFileSource reader(std::move(*file));
    co_await Drain(&reader, &got, &status);
    co_await reader.Done();
    EXPECT_EQ(got.size(), expected.size());
  };
  f.engine.Spawn(run());
  f.engine.Run();
  ASSERT_TRUE(status.ok()) << status.ToString();
}

}  // namespace
}  // namespace spongefiles::mapred
