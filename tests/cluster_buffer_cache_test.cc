#include "cluster/buffer_cache.h"

#include <gtest/gtest.h>

#include "cluster/disk.h"
#include "common/units.h"
#include "sim/engine.h"

namespace spongefiles::cluster {
namespace {

struct Fixture {
  sim::Engine engine;
  Disk disk;
  BufferCache cache;

  explicit Fixture(uint64_t capacity)
      : disk(&engine, DiskConfig{}),
        cache(&engine, &disk, MakeConfig(capacity)) {}

  static BufferCacheConfig MakeConfig(uint64_t capacity) {
    BufferCacheConfig config;
    config.capacity = capacity;
    return config;
  }
};

sim::Task<> WriteFile(BufferCache* cache, uint64_t file, uint64_t bytes) {
  co_await cache->Write(file, 0, bytes);
}

sim::Task<> ReadFile(BufferCache* cache, uint64_t file, uint64_t bytes) {
  co_await cache->Read(file, 0, bytes);
}

TEST(BufferCacheTest, SmallWriteAbsorbedWithoutDiskIo) {
  Fixture f(GiB(1));
  f.engine.Spawn(WriteFile(&f.cache, 1, MiB(10)));
  f.engine.Run();
  EXPECT_EQ(f.disk.bytes_written(), 0u);
  EXPECT_EQ(f.cache.bytes_absorbed(), MiB(10));
  // Only a memory copy: far faster than any disk write.
  EXPECT_LT(f.engine.now(), Millis(20));
}

TEST(BufferCacheTest, ReadBackOfCachedWriteHitsMemory) {
  Fixture f(GiB(1));
  auto run = [](BufferCache* cache) -> sim::Task<> {
    co_await cache->Write(1, 0, MiB(10));
    co_await cache->Read(1, 0, MiB(10));
  };
  f.engine.Spawn(run(&f.cache));
  f.engine.Run();
  EXPECT_EQ(f.disk.bytes_read(), 0u);
  EXPECT_EQ(f.cache.hits(), 10u);
  EXPECT_EQ(f.cache.misses(), 0u);
}

TEST(BufferCacheTest, UncachedReadGoesToDisk) {
  Fixture f(GiB(1));
  f.engine.Spawn(ReadFile(&f.cache, 7, MiB(8)));
  f.engine.Run();
  EXPECT_EQ(f.disk.bytes_read(), MiB(8));
  EXPECT_EQ(f.cache.misses(), 8u);
}

TEST(BufferCacheTest, ContiguousMissesCoalesceIntoOneDiskRequest) {
  Fixture f(GiB(1));
  f.engine.Spawn(ReadFile(&f.cache, 7, MiB(16)));
  f.engine.Run();
  EXPECT_EQ(f.disk.requests(), 1u);
}

TEST(BufferCacheTest, TinyCacheWritesThrough) {
  Fixture f(0);
  f.engine.Spawn(WriteFile(&f.cache, 1, MiB(4)));
  f.engine.Run();
  EXPECT_EQ(f.disk.bytes_written(), MiB(4));
}

TEST(BufferCacheTest, DirtyThrottlingForcesFlush) {
  // 100 MB cache, dirty threshold 40 MB: writing 200 MB must push most of
  // it to disk.
  Fixture f(MiB(100));
  f.engine.Spawn(WriteFile(&f.cache, 1, MiB(200)));
  f.engine.Run();
  EXPECT_GT(f.disk.bytes_written(), MiB(100));
  EXPECT_LE(f.cache.dirty_bytes(),
            static_cast<uint64_t>(0.4 * MiB(100)) + kMiB);
}

TEST(BufferCacheTest, DropDiscardsDirtyDataWithoutWriteback) {
  Fixture f(GiB(1));
  f.engine.Spawn(WriteFile(&f.cache, 1, MiB(50)));
  f.engine.Run();
  EXPECT_EQ(f.cache.dirty_bytes(), MiB(50));
  f.cache.Drop(1);
  EXPECT_EQ(f.cache.dirty_bytes(), 0u);
  EXPECT_EQ(f.cache.cached_bytes(), 0u);
  f.engine.Run();
  EXPECT_EQ(f.disk.bytes_written(), 0u);
}

TEST(BufferCacheTest, FlushWritesDirtyBlocksOnce) {
  Fixture f(GiB(1));
  auto run = [](BufferCache* cache) -> sim::Task<> {
    co_await cache->Write(1, 0, MiB(30));
    co_await cache->Flush(1);
    co_await cache->Flush(1);  // second flush is a no-op
  };
  f.engine.Spawn(run(&f.cache));
  f.engine.Run();
  EXPECT_EQ(f.disk.bytes_written(), MiB(30));
  EXPECT_EQ(f.cache.dirty_bytes(), 0u);
}

TEST(BufferCacheTest, EvictionKeepsCacheWithinCapacity) {
  Fixture f(MiB(64));
  auto run = [](BufferCache* cache) -> sim::Task<> {
    for (uint64_t file = 1; file <= 4; ++file) {
      co_await cache->Read(file, 0, MiB(32));
    }
  };
  f.engine.Spawn(run(&f.cache));
  f.engine.Run();
  EXPECT_LE(f.cache.cached_bytes(), MiB(64));
}

TEST(BufferCacheTest, StreamingScanDoesNotEvictHotData) {
  // Segmented LRU: a file written then read (two touches -> active list)
  // must survive a one-pass streaming scan bigger than the cache.
  Fixture f(MiB(256));
  auto run = [](BufferCache* cache, Disk* disk, uint64_t* reread_disk_bytes)
      -> sim::Task<> {
    // Hot spill file: written, read back once (promoted to active).
    co_await cache->Write(1, 0, MiB(40));
    co_await cache->Read(1, 0, MiB(40));
    // Cold streaming scan, 1 GB through a 256 MB cache.
    for (uint64_t off = 0; off < GiB(1); off += MiB(16)) {
      co_await cache->Read(2, off, MiB(16));
    }
    uint64_t before = disk->bytes_read();
    co_await cache->Read(1, 0, MiB(40));
    *reread_disk_bytes = disk->bytes_read() - before;
  };
  uint64_t reread_disk_bytes = ~0ull;
  f.engine.Spawn(run(&f.cache, &f.disk, &reread_disk_bytes));
  f.engine.Run();
  EXPECT_EQ(reread_disk_bytes, 0u) << "hot spill file was evicted";
}

TEST(BufferCacheTest, PlainLruWouldThrashButActiveListCaps) {
  // The streaming file itself must not occupy more than the cache.
  Fixture f(MiB(128));
  auto run = [](BufferCache* cache) -> sim::Task<> {
    for (uint64_t off = 0; off < GiB(1); off += MiB(8)) {
      co_await cache->Read(9, off, MiB(8));
    }
  };
  f.engine.Spawn(run(&f.cache));
  f.engine.Run();
  EXPECT_LE(f.cache.cached_bytes(), MiB(128));
  // One-pass scan: every block is a miss.
  EXPECT_EQ(f.cache.misses(), 1024u);
}

TEST(BufferCacheTest, CapacityZeroReadAlsoWritesThrough) {
  Fixture f(0);
  f.engine.Spawn(ReadFile(&f.cache, 3, MiB(2)));
  f.engine.Run();
  EXPECT_EQ(f.disk.bytes_read(), MiB(2));
}

}  // namespace
}  // namespace spongefiles::cluster
