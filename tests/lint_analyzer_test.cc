#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "lint/analyzer.h"
#include "lint/diagnostic.h"
#include "lint/lexer.h"

namespace spongefiles::lint {
namespace {

// Check ids of the UNWAIVED diagnostics, in line order.
std::vector<std::string> Ids(const FileReport& report) {
  std::vector<std::string> out;
  for (const Diagnostic& d : report.diagnostics) {
    if (!d.waived) out.push_back(CheckId(d.check));
  }
  return out;
}

FileReport Analyze(const std::string& source,
                   const std::string& path = "src/fake/file.cc") {
  return AnalyzeSource(path, source);
}

// ---- check 1: coroutine-frame escapes -------------------------------------

// The regression this linter exists for: a detached coroutine holding a
// reference into a caller frame that is destroyed before the frame runs.
TEST(CoroRefTest, ReferenceParameterOnCoroutineIsFlagged) {
  FileReport r = Analyze(R"cc(
    sim::Task<> WriteSpill(const std::string& name, uint64_t bytes) {
      co_await disk->Write(bytes);
    }
  )cc");
  EXPECT_EQ(Ids(r), (std::vector<std::string>{"ref"}));
}

TEST(CoroRefTest, ViewParameterIsFlagged) {
  FileReport r = Analyze(R"cc(
    sim::Task<Status> AppendBytes(Slice data);
  )cc");
  EXPECT_EQ(Ids(r), (std::vector<std::string>{"ref"}));
}

TEST(CoroRefTest, ByValueParametersPass) {
  FileReport r = Analyze(R"cc(
    sim::Task<Status> AppendBlock(std::string name, uint64_t bytes);
    sim::Task<> Touch(BlockKey key, bool mark_dirty);
  )cc");
  EXPECT_TRUE(Ids(r).empty());
}

// A `&` nested in template arguments does not make the parameter itself a
// reference: a by-value std::function whose call signature takes refs is
// the caller's problem, not a frame escape.
TEST(CoroRefTest, ReferenceInsideTemplateArgumentsPasses) {
  FileReport r = Analyze(R"cc(
    sim::Task<Status> ForEach(std::function<Status(const Tuple&)> fn,
                              bool respill);
  )cc");
  EXPECT_TRUE(Ids(r).empty());
}

TEST(CoroRefTest, NonCoroutineReferenceParameterPasses) {
  FileReport r = Analyze(R"cc(
    void Observe(const std::string& name);
    Status Validate(const Config& config);
  )cc");
  EXPECT_TRUE(Ids(r).empty());
}

TEST(CoroRefTest, LambdaWithTrailingTaskReturnIsFlagged) {
  FileReport r = Analyze(R"cc(
    auto run = [](const std::string& key) -> sim::Task<> { co_return; };
  )cc");
  EXPECT_EQ(Ids(r), (std::vector<std::string>{"ref"}));
}

// ---- waivers --------------------------------------------------------------

TEST(WaiverTest, WaiverOnLineAboveSuppresses) {
  FileReport r = Analyze(
      "// lint: ref-ok(awaited inline; the string outlives the frame)\n"
      "sim::Task<> Read(const std::string& name);\n");
  ASSERT_EQ(r.diagnostics.size(), 1u);
  EXPECT_TRUE(r.diagnostics[0].waived);
  EXPECT_EQ(r.diagnostics[0].waiver_reason,
            "awaited inline; the string outlives the frame");
  EXPECT_EQ(r.unwaived(), 0u);
}

TEST(WaiverTest, WaiverOnSameLineSuppresses) {
  FileReport r = Analyze(
      "sim::Task<> Read(const std::string& name);  "
      "// lint: ref-ok(awaited inline)\n");
  ASSERT_EQ(r.diagnostics.size(), 1u);
  EXPECT_TRUE(r.diagnostics[0].waived);
}

TEST(WaiverTest, WaiverForDifferentCheckDoesNotSuppress) {
  // The det-ok waiver does not suppress the ref diagnostic, and — since it
  // then matches nothing at all — is itself reported as an orphan.
  FileReport r = Analyze(
      "// lint: det-ok(not the right check)\n"
      "sim::Task<> Read(const std::string& name);\n");
  EXPECT_EQ(Ids(r), (std::vector<std::string>{"orphan", "ref"}));
}

TEST(WaiverTest, WaiverWithoutReasonIsItselfADiagnostic) {
  FileReport r = Analyze(
      "// lint: ref-ok\n"
      "sim::Task<> Read(const std::string& name);\n");
  EXPECT_EQ(Ids(r), (std::vector<std::string>{"waiver", "ref"}));
}

TEST(WaiverTest, WaiverForUnknownCheckIsADiagnostic) {
  FileReport r = Analyze("int x;  // lint: bogus-ok(meaningless)\n");
  EXPECT_EQ(Ids(r), (std::vector<std::string>{"waiver"}));
}

TEST(WaiverTest, EmptyWaiverMarkerIsADiagnostic) {
  FileReport r = Analyze("int x;  // lint:\n");
  EXPECT_EQ(Ids(r), (std::vector<std::string>{"waiver"}));
}

// ---- check 2: determinism hazards -----------------------------------------

// Reintroducing a wall-clock read must fail the lint tier.
TEST(DeterminismTest, SystemClockIsFlagged) {
  FileReport r = Analyze(R"cc(
    auto t0 = std::chrono::system_clock::now();
  )cc");
  EXPECT_EQ(Ids(r), (std::vector<std::string>{"det"}));
}

TEST(DeterminismTest, BannedCallInExpressionIsFlagged) {
  FileReport r = Analyze(R"cc(
    uint64_t seed = time(nullptr);
  )cc");
  EXPECT_EQ(Ids(r), (std::vector<std::string>{"det"}));
}

TEST(DeterminismTest, MemberNamedLikeBannedCallPasses) {
  FileReport r = Analyze(R"cc(
    Duration elapsed = stats.time();
    Duration time(int scale);
  )cc");
  EXPECT_TRUE(Ids(r).empty());
}

TEST(DeterminismTest, AllowlistedPathPasses) {
  FileReport r = AnalyzeSource("src/common/random.h", R"cc(
    #include <random>
    std::mt19937_64 engine;
  )cc",
                               AnalyzerOptions());
  EXPECT_TRUE(Ids(r).empty());
}

// ---- check 5: banned headers ----------------------------------------------

TEST(BannedHeaderTest, MutexAndThreadAreFlagged) {
  FileReport r = Analyze("#include <mutex>\n#include <thread>\n");
  EXPECT_EQ(Ids(r), (std::vector<std::string>{"header", "header"}));
}

TEST(BannedHeaderTest, OrdinaryHeadersPass) {
  FileReport r = Analyze("#include <vector>\n#include \"sim/task.h\"\n");
  EXPECT_TRUE(Ids(r).empty());
}

// The sharded harness is the one sanctioned home for host threading: its
// path (and only its path) may include the threading headers.
TEST(BannedHeaderTest, ThreadingAllowlistCoversOnlyTheShardedHarness) {
  const std::string threading =
      "#include <thread>\n#include <mutex>\n#include <condition_variable>\n";
  EXPECT_TRUE(Ids(Analyze(threading, "src/sim/parallel.cc")).empty());
  EXPECT_TRUE(Ids(Analyze(threading, "src/sim/parallel.h")).empty());
  // Anywhere else — including the rest of src/sim — still fails.
  EXPECT_EQ(Ids(Analyze(threading, "src/sim/engine.cc")),
            (std::vector<std::string>{"header", "header", "header"}));
  EXPECT_EQ(Ids(Analyze("#include <thread>\n", "src/sponge/sponge_server.cc")),
            (std::vector<std::string>{"header"}));
  EXPECT_EQ(Ids(Analyze("#include <future>\n", "src/cluster/network.cc")),
            (std::vector<std::string>{"header"}));
}

// The threading allowlist exempts only the threading headers: ambient
// randomness or time in the sharded harness is still a determinism hole.
TEST(BannedHeaderTest, ThreadingAllowlistDoesNotCoverRandomOrTime) {
  EXPECT_EQ(Ids(Analyze("#include <random>\n", "src/sim/parallel.cc")),
            (std::vector<std::string>{"header"}));
  EXPECT_EQ(Ids(Analyze("#include <ctime>\n", "src/sim/parallel.cc")),
            (std::vector<std::string>{"header"}));
}

// ---- check 3: unordered iteration -----------------------------------------

TEST(UnorderedIterTest, IterationFeedingOrderedOutputIsFlagged) {
  FileReport r = Analyze(R"cc(
    std::unordered_map<std::string, int> counts;
    void Emit(std::vector<std::string>* out) {
      for (const auto& [key, value] : counts) {
        out->push_back(key);
      }
    }
  )cc");
  EXPECT_EQ(Ids(r), (std::vector<std::string>{"iter"}));
}

TEST(UnorderedIterTest, IterationWithoutASinkPasses) {
  FileReport r = Analyze(R"cc(
    std::unordered_map<std::string, int> counts;
    int Total() {
      int total = 0;
      for (const auto& [key, value] : counts) {
        total = total + value;
      }
      return total;
    }
  )cc");
  EXPECT_TRUE(Ids(r).empty());
}

TEST(UnorderedIterTest, OrderedContainerPasses) {
  FileReport r = Analyze(R"cc(
    std::map<std::string, int> counts;
    void Emit(std::vector<std::string>* out) {
      for (const auto& [key, value] : counts) {
        out->push_back(key);
      }
    }
  )cc");
  EXPECT_TRUE(Ids(r).empty());
}

// ---- check 4: lock held across a suspension point -------------------------

TEST(LockAcrossAwaitTest, AwaitWhileHoldingMutexIsFlagged) {
  FileReport r = Analyze(R"cc(
    sim::Task<> Critical(Mutex* mu, Engine* engine) {
      co_await mu->Lock();
      co_await engine->Delay(Millis(1));
      mu->Unlock();
    }
  )cc");
  EXPECT_EQ(Ids(r), (std::vector<std::string>{"lock"}));
}

TEST(LockAcrossAwaitTest, ReleaseBeforeNextAwaitPasses) {
  FileReport r = Analyze(R"cc(
    sim::Task<> Critical(Mutex* mu, Engine* engine) {
      co_await mu->Lock();
      mu->Unlock();
      co_await engine->Delay(Millis(1));
    }
  )cc");
  EXPECT_TRUE(Ids(r).empty());
}

TEST(LockAcrossAwaitTest, ScopeExitDropsTheLock) {
  FileReport r = Analyze(R"cc(
    sim::Task<> Two(Mutex* mu, Engine* engine) {
      {
        co_await mu->Lock();
        mu->Unlock();
      }
      co_await engine->Delay(Millis(1));
    }
  )cc");
  EXPECT_TRUE(Ids(r).empty());
}

// ---- check 6: unchecked Status / Result -----------------------------------

TEST(UncheckedStatusTest, DiscardedStatusCallIsFlagged) {
  FileReport r = Analyze(R"cc(
    Status Save(int x);
    void Run() {
      Save(1);
    }
  )cc");
  EXPECT_EQ(Ids(r), (std::vector<std::string>{"status"}));
}

TEST(UncheckedStatusTest, AssignedStatusPasses) {
  FileReport r = Analyze(R"cc(
    Status Save(int x);
    void Run() {
      Status s = Save(1);
      if (!s.ok()) return;
    }
  )cc");
  EXPECT_TRUE(Ids(r).empty());
}

TEST(UncheckedStatusTest, DiscardedAwaitedStatusIsFlagged) {
  FileReport r = Analyze(R"cc(
    sim::Task<Status> Flush(uint64_t file);
    sim::Task<> Run() {
      co_await Flush(1);
    }
  )cc");
  EXPECT_EQ(Ids(r), (std::vector<std::string>{"status"}));
}

TEST(UncheckedStatusTest, AwaitedPlainTaskPasses) {
  FileReport r = Analyze(R"cc(
    sim::Task<> Delay(uint64_t n);
    sim::Task<> Run() {
      co_await Delay(1);
    }
  )cc");
  EXPECT_TRUE(Ids(r).empty());
}

// ---- symbol indexing ------------------------------------------------------

TEST(SymbolIndexTest, HarvestsDeclarations) {
  LexResult lex = Lex(R"cc(
    #include "sim/task.h"
    #include "common/status.h"
    Status Open(std::string name);
    Result<uint64_t> Size(uint64_t id);
    sim::Task<Status> Flush(uint64_t file);
    sim::Task<> Delay(uint64_t n);
    std::unordered_map<uint64_t, Block> blocks_;
  )cc");
  SymbolIndex index = IndexSymbols(lex);
  EXPECT_EQ(index.status_functions.count("Open"), 1u);
  EXPECT_EQ(index.status_functions.count("Size"), 1u);
  EXPECT_EQ(index.awaitable_status_functions.count("Flush"), 1u);
  EXPECT_EQ(index.awaitable_status_functions.count("Delay"), 0u);
  EXPECT_EQ(index.unordered_names.count("blocks_"), 1u);
  EXPECT_EQ(index.quoted_includes,
            (std::vector<std::string>{"sim/task.h", "common/status.h"}));
}

TEST(SymbolIndexTest, ExpressionUsesAreNotDeclarations) {
  LexResult lex = Lex(R"cc(
    void Run() {
      return Status::OK();
      auto s = Status(StatusCode::kInternal, "x");
    }
  )cc");
  SymbolIndex index = IndexSymbols(lex);
  EXPECT_TRUE(index.status_functions.empty());
}

}  // namespace
}  // namespace spongefiles::lint
