// Chaos integration test (the robustness tentpole's end-to-end check):
// randomized gray-failure schedules — hangs, slow RPCs, slow disks, sick
// links, tracker outages, bit rot, crashes — are injected into a small
// testbed while a skewed median job runs. Under every seed the job must
// produce output byte-identical to a fault-free run (checksums catch
// corruption, task retries and the spill cascade recover everything), no
// chunk may leak once the GC has swept, the whole run must stay
// deterministic for a fixed seed, and a hung server must never deadlock
// the job (the client-side deadlines un-stick it).
//
// The number of chaos seeds defaults low so plain ctest stays fast;
// tools/check.sh raises it via SPONGE_CHAOS_SEEDS for the sanitizer run.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/units.h"
#include "mapred/job.h"
#include "sponge/failure.h"
#include "workload/testbed.h"

namespace spongefiles {
namespace {

int ChaosSeeds() {
  // lint: det-ok(seed-sweep width knob, read at test startup; not simulated state)
  const char* env = std::getenv("SPONGE_CHAOS_SEEDS");
  if (env == nullptr) return 4;
  int n = std::atoi(env);
  return n < 1 ? 1 : n;
}

struct ChaosRun {
  Duration runtime = 0;
  std::vector<mapred::Record> output;
  std::vector<sponge::FaultEvent> schedule;
  uint64_t leaked_chunks = 0;
};

constexpr SimTime kFaultHorizon = Seconds(90);

// Runs the skewed median job on a small testbed (tiny sponge pools force
// the remote path, so the fault surface actually gets exercised), with a
// seeded chaos schedule when `inject` is set. After the job finishes the
// clock is advanced past every fault window, each server is GC-swept, and
// the surviving chunk count is recorded.
ChaosRun RunChaosJob(uint64_t seed, bool inject) {
  workload::TestbedConfig bed_config;
  bed_config.num_nodes = 8;
  // Two racks behind a 4:1 core: the chaos sweep then also exercises
  // tracker-shard outages, gossip partitions, and the cross-rack rung.
  bed_config.nodes_per_rack = 4;
  bed_config.oversubscription = 4.0;
  bed_config.sponge.allow_cross_rack = true;
  bed_config.sponge_memory = MiB(64);
  // Hedged reads stay on for both the fault-free baseline and the chaos
  // runs (so their outputs stay comparable): slow-but-alive servers are
  // raced instead of ridden into the breaker.
  bed_config.sponge.rpc.hedge_reads = true;
  // Replication is on for the whole sweep: replica writes, read failover,
  // and the tracker-driven repair loop all run under every fault schedule
  // and must never change the answer or leak a chunk.
  bed_config.sponge.replication.enabled = true;
  workload::Testbed bed(bed_config);
  workload::NumbersDatasetConfig data;
  data.count = 50001;
  workload::NumbersDataset numbers(&bed.dfs(), "nums", data);

  sponge::FailureInjector injector(&bed.env(), seed);
  if (inject) {
    sponge::ChaosOptions options;
    options.start = Seconds(2);
    options.horizon = kFaultHorizon;
    options.num_faults = 10;
    // Fail-stop crashes (no restart): the paper's failure model, and the
    // scenario replication exists for — a crashed server's chunks must be
    // served from replicas and re-replicated by the repair loop.
    options.fail_stop_crashes = true;
    injector.ScheduleChaos(options);
  }

  ChaosRun run;
  // Speculation is likewise on for every run: backup attempts launched
  // against chaos-induced stragglers must never change the answer, and
  // their killed losers must not leak chunks past the sweep below.
  auto job = workload::MakeMedianJob(&numbers, mapred::SpillMode::kSponge);
  job.speculation.enabled = true;
  job.speculation.check_period = Seconds(1);
  job.speculation.min_attempt_age = Seconds(3);
  auto result = bed.RunJob(std::move(job));
  EXPECT_TRUE(result.ok()) << "seed " << seed << ": "
                           << result.status().ToString();
  if (!result.ok()) return run;
  run.runtime = result->runtime;
  run.output = result->output;
  run.schedule = injector.schedule();

  // Let every scheduled fault fire and clear (crash restarts, hang ends)
  // before judging leaks: a sweep against a still-hung or down server
  // would not prove anything.
  SimTime settle = std::max(bed.engine().now(), kFaultHorizon) + Seconds(10);
  bed.engine().RunUntil(settle);

  bool swept = false;
  auto sweep = [](workload::Testbed* tb, ChaosRun* record,
                  bool* done) -> sim::Task<> {
    for (size_t n = 0; n < tb->cluster().size(); ++n) {
      (void)co_await tb->env().server(n).GcSweep();
      record->leaked_chunks +=
          tb->env().server(n).pool().AllocatedChunks().size();
    }
    *done = true;
  };
  bed.engine().Spawn(sweep(&bed, &run, &swept));
  bed.engine().RunUntil(bed.engine().now() + Seconds(10));
  EXPECT_TRUE(swept) << "seed " << seed << ": GC sweep did not finish";
  return run;
}

TEST(SpongeChaosTest, OutputMatchesFaultFreeRunAndNothingLeaks) {
  ChaosRun baseline = RunChaosJob(0, /*inject=*/false);
  ASSERT_FALSE(baseline.output.empty());
  EXPECT_EQ(baseline.leaked_chunks, 0u);
  int seeds = ChaosSeeds();
  for (int seed = 1; seed <= seeds; ++seed) {
    SCOPED_TRACE("chaos seed " + std::to_string(seed));
    ChaosRun chaotic = RunChaosJob(static_cast<uint64_t>(seed),
                                   /*inject=*/true);
    EXPECT_FALSE(chaotic.schedule.empty());
    // Byte-identical output: same records in the same order. Faults may
    // slow the job down but must never change what it computes.
    EXPECT_EQ(chaotic.output, baseline.output);
    EXPECT_EQ(chaotic.leaked_chunks, 0u);
  }
}

TEST(SpongeChaosTest, FixedSeedIsDeterministic) {
  ChaosRun first = RunChaosJob(42, /*inject=*/true);
  ChaosRun second = RunChaosJob(42, /*inject=*/true);
  EXPECT_EQ(first.schedule, second.schedule);
  EXPECT_EQ(first.runtime, second.runtime);
  EXPECT_EQ(first.output, second.output);
}

TEST(SpongeChaosTest, HungServerDoesNotDeadlockJob) {
  // One rack peer hangs for most of the job: every RPC parked on it must
  // be timed out by the client, the breaker must eject the server, and
  // the job must still finish correctly (Testbed's internal one-day
  // deadline is the deadlock detector).
  workload::TestbedConfig bed_config;
  bed_config.num_nodes = 8;
  bed_config.sponge_memory = MiB(64);
  workload::Testbed bed(bed_config);
  workload::NumbersDatasetConfig data;
  data.count = 50001;
  workload::NumbersDataset numbers(&bed.dfs(), "nums", data);
  sponge::FailureInjector injector(&bed.env(), 1);
  injector.ScheduleHang(/*node=*/1, /*at=*/Seconds(5),
                        /*duration=*/Minutes(10));
  auto result = bed.RunJob(
      workload::MakeMedianJob(&numbers, mapred::SpillMode::kSponge));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->output.size(), 1u);
  EXPECT_EQ(result->output[0].number, numbers.expected_median());
}

}  // namespace
}  // namespace spongefiles
