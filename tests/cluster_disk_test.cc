#include "cluster/disk.h"

#include <gtest/gtest.h>

#include "common/units.h"
#include "sim/engine.h"
#include "sim/sync.h"

namespace spongefiles::cluster {
namespace {

DiskConfig TestDisk() {
  DiskConfig config;
  config.avg_seek = Millis(8);
  config.avg_rotation = Millis(4);
  config.sequential_bandwidth = static_cast<double>(MiB(100));
  return config;
}

sim::Task<> DoRead(Disk* disk, uint64_t stream, uint64_t offset,
                   uint64_t bytes) {
  co_await disk->Read(stream, offset, bytes);
}

TEST(DiskTest, FirstAccessPaysSeek) {
  sim::Engine engine;
  Disk disk(&engine, TestDisk());
  engine.Spawn(DoRead(&disk, 1, 0, MiB(1)));
  engine.Run();
  // 12 ms seek+rotation plus 10 ms transfer of 1 MB at 100 MB/s.
  EXPECT_NEAR(ToMillis(engine.now()), 22.0, 0.5);
  EXPECT_EQ(disk.seeks(), 1u);
}

TEST(DiskTest, SequentialContinuationSkipsSeek) {
  sim::Engine engine;
  Disk disk(&engine, TestDisk());
  auto run = [](Disk* d) -> sim::Task<> {
    co_await d->Read(1, 0, MiB(1));
    co_await d->Read(1, MiB(1), MiB(1));
    co_await d->Read(1, MiB(2), MiB(1));
  };
  engine.Spawn(run(&disk));
  engine.Run();
  // One seek total, then pure sequential transfer.
  EXPECT_EQ(disk.seeks(), 1u);
  EXPECT_NEAR(ToMillis(engine.now()), 12 + 30, 0.5);
}

TEST(DiskTest, RandomOffsetsAlwaysSeek) {
  sim::Engine engine;
  Disk disk(&engine, TestDisk());
  auto run = [](Disk* d) -> sim::Task<> {
    co_await d->Write(1, 0, MiB(1));
    co_await d->Write(1, MiB(10), MiB(1));
    co_await d->Write(1, MiB(5), MiB(1));
  };
  engine.Spawn(run(&disk));
  engine.Run();
  EXPECT_EQ(disk.seeks(), 3u);
}

TEST(DiskTest, InterleavedStreamsCauseSeeks) {
  sim::Engine engine;
  Disk disk(&engine, TestDisk());
  // Two tasks streaming different files concurrently: every request
  // switches streams, so every request seeks. This is the contention
  // breakdown the paper's Table 1 demonstrates.
  auto stream_file = [](Disk* d, uint64_t stream) -> sim::Task<> {
    for (int i = 0; i < 10; ++i) {
      co_await d->Read(stream, static_cast<uint64_t>(i) * MiB(1), MiB(1));
    }
  };
  engine.Spawn(stream_file(&disk, 1));
  engine.Spawn(stream_file(&disk, 2));
  engine.Run();
  EXPECT_EQ(disk.seeks(), 20u);
  // 20 requests x (12 + 10) ms.
  EXPECT_NEAR(ToMillis(engine.now()), 20 * 22.0, 1.0);
}

TEST(DiskTest, SoloStreamFasterThanContended) {
  Duration solo;
  Duration contended;
  {
    sim::Engine engine;
    Disk disk(&engine, TestDisk());
    auto run = [](Disk* d) -> sim::Task<> {
      for (int i = 0; i < 50; ++i) {
        co_await d->Read(1, static_cast<uint64_t>(i) * MiB(1), MiB(1));
      }
    };
    engine.Spawn(run(&disk));
    engine.Run();
    solo = engine.now();
  }
  {
    sim::Engine engine;
    Disk disk(&engine, TestDisk());
    auto run = [](Disk* d, uint64_t stream) -> sim::Task<> {
      for (int i = 0; i < 50; ++i) {
        co_await d->Read(stream, static_cast<uint64_t>(i) * MiB(1), MiB(1));
      }
    };
    engine.Spawn(run(&disk, 1));
    engine.Spawn(run(&disk, 2));
    engine.Run();
    contended = engine.now();
  }
  // Two interleaved streams take far more than 2x the solo time because of
  // the per-request seeks.
  EXPECT_GT(contended, 3 * solo);
}

TEST(DiskTest, StatsTrackBytes) {
  sim::Engine engine;
  Disk disk(&engine, TestDisk());
  auto run = [](Disk* d) -> sim::Task<> {
    co_await d->Read(1, 0, MiB(2));
    co_await d->Write(2, 0, MiB(3));
  };
  engine.Spawn(run(&disk));
  engine.Run();
  EXPECT_EQ(disk.bytes_read(), MiB(2));
  EXPECT_EQ(disk.bytes_written(), MiB(3));
  EXPECT_EQ(disk.requests(), 2u);
  EXPECT_EQ(disk.busy_time(), engine.now());
}

TEST(DiskTest, FifoQueueing) {
  sim::Engine engine;
  Disk disk(&engine, TestDisk());
  std::vector<int> order;
  auto req = [](Disk* d, std::vector<int>* log, int id) -> sim::Task<> {
    co_await d->Read(static_cast<uint64_t>(id), 0, MiB(1));
    log->push_back(id);
  };
  for (int i = 0; i < 5; ++i) engine.Spawn(req(&disk, &order, i));
  engine.Run();
  EXPECT_EQ(order, std::vector<int>({0, 1, 2, 3, 4}));
}

}  // namespace
}  // namespace spongefiles::cluster
