#include "common/status.h"

#include <gtest/gtest.h>

namespace spongefiles {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = NotFound("no such chunk");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "no such chunk");
  EXPECT_EQ(s.ToString(), "NOT_FOUND: no such chunk");
}

TEST(StatusTest, FactoryHelpersProduceDistinctCodes) {
  EXPECT_EQ(InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(ResourceExhausted("x").code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(FailedPrecondition("x").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(Unavailable("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Aborted("x").code(), StatusCode::kAborted);
  EXPECT_EQ(OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(NotFound("a"), NotFound("a"));
  EXPECT_FALSE(NotFound("a") == NotFound("b"));
  EXPECT_FALSE(NotFound("a") == Internal("a"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status(StatusCode::kUnavailable, "server down");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

Status FailIfNegative(int x) {
  if (x < 0) return InvalidArgument("negative");
  return Status::OK();
}

Status UseReturnIfError(int x) {
  RETURN_IF_ERROR(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusMacrosTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(UseReturnIfError(1).ok());
  EXPECT_EQ(UseReturnIfError(-1).code(), StatusCode::kInvalidArgument);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return InvalidArgument("odd");
  return x / 2;
}

Status UseAssignOrReturn(int x, int* out) {
  ASSIGN_OR_RETURN(*out, Half(x));
  return Status::OK();
}

TEST(StatusMacrosTest, AssignOrReturnUnwrapsOrPropagates) {
  int out = 0;
  EXPECT_TRUE(UseAssignOrReturn(8, &out).ok());
  EXPECT_EQ(out, 4);
  EXPECT_EQ(UseAssignOrReturn(7, &out).code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace spongefiles
