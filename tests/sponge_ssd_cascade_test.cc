// The cascade's SSD rung (ISSUE 10): with a local SSD configured, a
// SpongeFile fills local memory -> remote memory -> SSD -> disk in that
// order, round-trips bytes exactly, releases its SSD reservations on
// delete, respects the ssd_max_used_fraction headroom gate, and degrades
// gracefully under the two gray failures — a slowed SSD just takes
// longer, a worn one (writes fail, reads still work) drains while new
// chunks fall through to disk.

#include "sponge/sponge_file.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "cluster/cluster.h"
#include "cluster/dfs.h"
#include "common/checksum.h"
#include "common/random.h"
#include "common/units.h"
#include "sim/engine.h"
#include "sponge/failure.h"
#include "sponge/sponge_env.h"

namespace spongefiles::sponge {
namespace {

// A small cluster whose nodes carry a local SSD. The default shape — one
// node, 2 MiB of sponge, remote memory off — makes the cascade fully
// predictable: two chunks fit in memory, the SSD takes the next
// `ssd_capacity` worth, the rest lands on disk.
struct SsdFixture {
  sim::Engine engine;
  std::unique_ptr<cluster::Cluster> cluster_;
  std::unique_ptr<cluster::Dfs> dfs;
  std::unique_ptr<SpongeEnv> env;
  TaskContext task;

  explicit SsdFixture(SpongeConfig config = {},
                      uint64_t ssd_capacity = MiB(2),
                      uint64_t sponge_per_node = MiB(2),
                      size_t num_nodes = 1) {
    cluster::ClusterConfig cc;
    cc.num_nodes = num_nodes;
    cc.node.sponge_memory = sponge_per_node;
    cc.node.ssd.capacity = ssd_capacity;
    config.allow_remote_memory = num_nodes > 1;
    cluster_ = std::make_unique<cluster::Cluster>(&engine, cc);
    dfs = std::make_unique<cluster::Dfs>(cluster_.get());
    env = std::make_unique<SpongeEnv>(cluster_.get(), dfs.get(), config);
    task = env->StartTask(0);
    auto prime = [](MemoryTracker* tracker) -> sim::Task<> {
      co_await tracker->PollOnce();
    };
    engine.Spawn(prime(&env->tracker()));
    engine.Run();
  }

  cluster::Ssd& ssd() { return cluster_->node(0).ssd(); }

  // Writes `bytes` of zeros through a file and closes it.
  void WriteAndClose(SpongeFile* file, uint64_t bytes) {
    auto run = [&]() -> sim::Task<> {
      ByteRuns data;
      data.AppendZeros(bytes);
      (void)co_await file->Append(std::move(data));
      (void)co_await file->Close();
    };
    engine.Spawn(run());
    engine.Run();
  }
};

std::string RandomData(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::string out(n, '\0');
  for (auto& c : out) c = static_cast<char>(rng.Uniform(256));
  return out;
}

TEST(SpongeSsdCascadeTest, FillsLocalMemoryThenSsdThenDisk) {
  SsdFixture f;  // 2 MiB memory, 2 MiB SSD
  SpongeFile file(f.env.get(), &f.task, "cascade");
  f.WriteAndClose(&file, MiB(6));
  auto placements = file.ChunkPlacements();
  ASSERT_EQ(placements.size(), 6u);
  EXPECT_EQ(placements[0], ChunkLocation::kLocalMemory);
  EXPECT_EQ(placements[1], ChunkLocation::kLocalMemory);
  EXPECT_EQ(placements[2], ChunkLocation::kLocalSsd);
  EXPECT_EQ(placements[3], ChunkLocation::kLocalSsd);
  EXPECT_EQ(placements[4], ChunkLocation::kLocalDisk);
  EXPECT_EQ(placements[5], ChunkLocation::kLocalDisk);
  EXPECT_EQ(file.stats().chunks_local_ssd, 2u);
  EXPECT_EQ(file.stats().bytes_local_ssd, MiB(2));
  EXPECT_EQ(f.ssd().used_bytes(), MiB(2));
  EXPECT_EQ(f.ssd().writes(), 2u);
}

TEST(SpongeSsdCascadeTest, SsdComesAfterRemoteMemory) {
  // Two nodes: the second node's pool is the remote rung and must fill
  // before the writer's own SSD takes a chunk.
  SsdFixture f(SpongeConfig{}, /*ssd_capacity=*/MiB(2),
               /*sponge_per_node=*/MiB(2), /*num_nodes=*/2);
  SpongeFile file(f.env.get(), &f.task, "order");
  f.WriteAndClose(&file, MiB(6));
  EXPECT_EQ(file.stats().chunks_local_memory, 2u);
  EXPECT_EQ(file.stats().chunks_remote_memory, 2u);
  EXPECT_EQ(file.stats().chunks_local_ssd, 2u);
  EXPECT_EQ(file.stats().chunks_local_disk, 0u);
}

TEST(SpongeSsdCascadeTest, RoundTripThroughSsdPreservesBytes) {
  SsdFixture f;
  SpongeFile file(f.env.get(), &f.task, "rt");
  std::string data = RandomData(MiB(3) + 4321, 77);  // memory + SSD chunks
  Status status;
  uint64_t read_back_checksum = 0;
  auto run = [&]() -> sim::Task<> {
    status = co_await file.AppendBytes(Slice(data));
    if (!status.ok()) co_return;
    status = co_await file.Close();
    if (!status.ok()) co_return;
    Checksum sum;
    while (true) {
      auto chunk = co_await file.ReadNext();
      if (!chunk.ok()) {
        status = chunk.status();
        co_return;
      }
      if (chunk->empty()) break;
      auto bytes = chunk->ToBytes();
      sum.Update(Slice(bytes));
    }
    read_back_checksum = sum.digest();
  };
  f.engine.Spawn(run());
  f.engine.Run();
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_GE(file.stats().chunks_local_ssd, 1u);
  EXPECT_GE(f.ssd().reads(), 1u);
  EXPECT_EQ(read_back_checksum, Checksum::Of(Slice(data)));
}

TEST(SpongeSsdCascadeTest, DeleteReleasesSsdReservations) {
  SsdFixture f;
  SpongeFile file(f.env.get(), &f.task, "del");
  f.WriteAndClose(&file, MiB(4));
  ASSERT_EQ(f.ssd().used_bytes(), MiB(2));
  auto run = [&]() -> sim::Task<> { co_await file.Delete(); };
  f.engine.Spawn(run());
  f.engine.Run();
  EXPECT_EQ(f.ssd().used_bytes(), 0u);
}

TEST(SpongeSsdCascadeTest, DisabledRungSkipsThePresentSsd) {
  SpongeConfig config;
  config.ssd_enabled = false;
  SsdFixture f(config);
  SpongeFile file(f.env.get(), &f.task, "off");
  f.WriteAndClose(&file, MiB(4));
  EXPECT_EQ(file.stats().chunks_local_ssd, 0u);
  EXPECT_EQ(file.stats().chunks_local_disk, 2u);
  EXPECT_EQ(f.ssd().writes(), 0u);
}

TEST(SpongeSsdCascadeTest, UsedFractionGateLeavesHeadroom) {
  SpongeConfig config;
  config.ssd_max_used_fraction = 0.5;  // of a 4 MiB device: 2 MiB usable
  SsdFixture f(config, /*ssd_capacity=*/MiB(4));
  SpongeFile file(f.env.get(), &f.task, "headroom");
  f.WriteAndClose(&file, MiB(8));
  EXPECT_EQ(file.stats().chunks_local_ssd, 2u);
  EXPECT_EQ(file.stats().chunks_local_disk, 4u);
  EXPECT_EQ(f.ssd().used_bytes(), MiB(2));
}

TEST(SpongeSsdCascadeTest, WornSsdFallsThroughToDisk) {
  SsdFixture f;
  FailureInjector injector(f.env.get(), /*seed=*/1);
  injector.ScheduleSsdWear(/*node=*/0, /*at=*/Seconds(1),
                           /*duration=*/Seconds(5));
  SpongeFile worn_file(f.env.get(), &f.task, "worn");
  SpongeFile fresh_file(f.env.get(), &f.task, "fresh");
  auto run = [&]() -> sim::Task<> {
    co_await f.engine.Delay(Seconds(2));  // inside the wear window
    ByteRuns data;
    data.AppendZeros(MiB(4));
    (void)co_await worn_file.Append(std::move(data));
    (void)co_await worn_file.Close();
    // Free the memory chunks, then write again after endurance "recovers"
    // (a replaced device): the SSD rung works again.
    co_await worn_file.Delete();
    co_await f.engine.Delay(Seconds(10));
    ByteRuns more;
    more.AppendZeros(MiB(4));
    (void)co_await fresh_file.Append(std::move(more));
    (void)co_await fresh_file.Close();
  };
  f.engine.Spawn(run());
  f.engine.Run();
  // During the window every SSD write failed and the chunks landed on
  // disk; afterwards the rung absorbs them again.
  EXPECT_EQ(worn_file.stats().chunks_local_ssd, 0u);
  EXPECT_EQ(worn_file.stats().chunks_local_disk, 2u);
  EXPECT_GE(f.ssd().failed_writes(), 2u);
  EXPECT_EQ(fresh_file.stats().chunks_local_ssd, 2u);
  EXPECT_EQ(fresh_file.stats().chunks_local_disk, 0u);
}

TEST(SpongeSsdCascadeTest, SlowSsdCompletesJustLater) {
  // Identical writes against a healthy and a 10x-slowed SSD: both finish
  // with the same placements, the slow one just takes longer.
  auto timed_run = [](bool slow) {
    SsdFixture f;
    if (slow) {
      FailureInjector injector(f.env.get(), /*seed=*/1);
      injector.ScheduleSsdSlowdown(/*node=*/0, /*at=*/f.engine.now(),
                                   /*factor=*/10.0,
                                   /*duration=*/Seconds(60));
    }
    SpongeFile file(f.env.get(), &f.task, "timed");
    f.WriteAndClose(&file, MiB(4));
    EXPECT_EQ(file.stats().chunks_local_ssd, 2u);
    return f.ssd().busy_time();
  };
  Duration fast = timed_run(false);
  Duration slowed = timed_run(true);
  EXPECT_GT(slowed, fast);
}

}  // namespace
}  // namespace spongefiles::sponge
