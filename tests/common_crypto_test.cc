#include "common/crypto.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace spongefiles {
namespace {

TEST(XteaCtrTest, ApplyTwiceRestoresInput) {
  XteaCtr cipher(XteaCtr::DeriveKey("secret"));
  Rng rng(4);
  std::vector<uint8_t> data(1000);
  for (auto& b : data) b = static_cast<uint8_t>(rng.Next());
  std::vector<uint8_t> original = data;
  cipher.Apply(42, data.data(), data.size());
  EXPECT_NE(data, original);
  cipher.Apply(42, data.data(), data.size());
  EXPECT_EQ(data, original);
}

TEST(XteaCtrTest, DifferentNoncesDifferentCiphertext) {
  XteaCtr cipher(XteaCtr::DeriveKey("secret"));
  std::vector<uint8_t> a(64, 0x5a);
  std::vector<uint8_t> b(64, 0x5a);
  cipher.Apply(1, a.data(), a.size());
  cipher.Apply(2, b.data(), b.size());
  EXPECT_NE(a, b);
}

TEST(XteaCtrTest, DifferentKeysDifferentCiphertext) {
  XteaCtr a(XteaCtr::DeriveKey("alpha"));
  XteaCtr b(XteaCtr::DeriveKey("beta"));
  std::vector<uint8_t> da(64, 0x5a);
  std::vector<uint8_t> db(64, 0x5a);
  a.Apply(1, da.data(), da.size());
  b.Apply(1, db.data(), db.size());
  EXPECT_NE(da, db);
}

TEST(XteaCtrTest, NonBlockSizes) {
  XteaCtr cipher(XteaCtr::DeriveKey("k"));
  for (size_t n : {1u, 7u, 8u, 9u, 63u, 100u}) {
    std::vector<uint8_t> data(n, 0x33);
    std::vector<uint8_t> original = data;
    cipher.Apply(9, data.data(), n);
    cipher.Apply(9, data.data(), n);
    EXPECT_EQ(data, original) << n;
  }
}

TEST(XteaCtrTest, CiphertextLooksUniform) {
  XteaCtr cipher(XteaCtr::DeriveKey("entropy"));
  std::vector<uint8_t> data(1 << 16, 0);  // all zeros: pure keystream
  cipher.Apply(5, data.data(), data.size());
  // Mean byte value of a decent keystream is ~127.5.
  double sum = 0;
  for (uint8_t b : data) sum += b;
  EXPECT_NEAR(sum / data.size(), 127.5, 3.0);
}

TEST(XteaCtrTest, ApplyToLiteralsRoundTripsMixedRuns) {
  XteaCtr cipher(XteaCtr::DeriveKey("mixed"));
  ByteRuns runs;
  runs.AppendLiteral(Slice(std::string_view("confidential-header")));
  runs.AppendZeros(5000);
  runs.AppendLiteral(Slice(std::string_view("confidential-footer")));
  auto plaintext = runs.ToBytes();
  cipher.ApplyToLiterals(77, &runs);
  auto ciphertext = runs.ToBytes();
  EXPECT_NE(plaintext, ciphertext);
  // Logical structure preserved; zero filler untouched.
  EXPECT_EQ(runs.size(), plaintext.size());
  EXPECT_EQ(runs.physical_size(), 2u * 19);
  cipher.ApplyToLiterals(77, &runs);
  EXPECT_EQ(runs.ToBytes(), plaintext);
}

TEST(XteaCtrTest, DeriveKeyDeterministic) {
  EXPECT_EQ(XteaCtr::DeriveKey("x"), XteaCtr::DeriveKey("x"));
  EXPECT_NE(XteaCtr::DeriveKey("x"), XteaCtr::DeriveKey("y"));
}

}  // namespace
}  // namespace spongefiles
