#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "cluster/cluster.h"
#include "cluster/dfs.h"
#include "common/checksum.h"
#include "common/random.h"
#include "common/units.h"
#include "sim/engine.h"
#include "sponge/failure.h"
#include "sponge/memory_tracker.h"
#include "sponge/rpc_client.h"
#include "sponge/sponge_env.h"
#include "sponge/sponge_file.h"
#include "sponge/sponge_server.h"

namespace spongefiles::sponge {
namespace {

struct ServicesFixture {
  sim::Engine engine;
  std::unique_ptr<cluster::Cluster> cluster_;
  std::unique_ptr<cluster::Dfs> dfs;
  std::unique_ptr<SpongeEnv> env;

  explicit ServicesFixture(SpongeServerConfig server_config = {},
                           MemoryTrackerConfig tracker_config = {},
                           uint64_t sponge_per_node = MiB(4)) {
    cluster::ClusterConfig cc;
    cc.num_nodes = 4;
    cc.node.sponge_memory = sponge_per_node;
    cluster_ = std::make_unique<cluster::Cluster>(&engine, cc);
    dfs = std::make_unique<cluster::Dfs>(cluster_.get());
    env = std::make_unique<SpongeEnv>(cluster_.get(), dfs.get(),
                                      SpongeConfig{}, ChunkPoolConfig{},
                                      server_config, tracker_config);
  }
};

TEST(TaskRegistryTest, RegisterAndLiveness) {
  TaskRegistry registry;
  uint64_t id = registry.Register(3);
  EXPECT_TRUE(registry.IsAliveOn(id, 3));
  EXPECT_FALSE(registry.IsAliveOn(id, 2));
  EXPECT_EQ(*registry.NodeOf(id), 3u);
  registry.Deregister(id);
  EXPECT_FALSE(registry.IsAliveOn(id, 3));
  EXPECT_FALSE(registry.NodeOf(id).ok());
}

TEST(TaskRegistryTest, IdsNeverZeroAndUnique) {
  TaskRegistry registry;
  uint64_t a = registry.Register(0);
  uint64_t b = registry.Register(0);
  EXPECT_NE(a, 0u);
  EXPECT_NE(b, 0u);
  EXPECT_NE(a, b);
}

TEST(MemoryTrackerTest, PollBuildsSortedFreeList) {
  ServicesFixture f;
  // Consume chunks so free space differs per node.
  (void)f.env->server(1).pool().Allocate(ChunkOwner{1, 1});
  (void)f.env->server(1).pool().Allocate(ChunkOwner{1, 1});
  (void)f.env->server(2).pool().Allocate(ChunkOwner{1, 2});
  auto run = [&]() -> sim::Task<> { co_await f.env->tracker().PollOnce(); };
  f.engine.Spawn(run());
  f.engine.Run();
  const auto& list = f.env->tracker().snapshot();
  ASSERT_EQ(list.size(), 4u);
  for (size_t i = 1; i < list.size(); ++i) {
    EXPECT_GE(list[i - 1].free_bytes, list[i].free_bytes);
  }
}

TEST(MemoryTrackerTest, SnapshotGoesStaleUntilNextPoll) {
  ServicesFixture f;
  auto run = [&]() -> sim::Task<> { co_await f.env->tracker().PollOnce(); };
  f.engine.Spawn(run());
  f.engine.Run();
  uint64_t before = f.env->tracker().snapshot()[0].free_bytes;
  // Consume memory: the snapshot must NOT change until re-polled.
  (void)f.env->server(0).pool().Allocate(ChunkOwner{1, 0});
  for (const auto& entry : f.env->tracker().snapshot()) {
    if (entry.node == 0) {
      EXPECT_EQ(entry.free_bytes, before);
    }
  }
  f.engine.Spawn(run());
  f.engine.Run();
  bool updated = false;
  for (const auto& entry : f.env->tracker().snapshot()) {
    if (entry.node == 0) updated = entry.free_bytes < before;
  }
  EXPECT_TRUE(updated);
}

TEST(MemoryTrackerTest, PeriodicLoopKeepsPolling) {
  MemoryTrackerConfig tracker_config;
  tracker_config.poll_period = Seconds(1);
  ServicesFixture f(SpongeServerConfig{}, tracker_config);
  f.env->tracker().Start();
  f.engine.RunUntil(Seconds(5.5));
  EXPECT_GE(f.env->tracker().polls_completed(), 5u);
  f.env->StopServices();
  f.engine.Run();
}

TEST(MemoryTrackerTest, DeadServersExcludedFromList) {
  ServicesFixture f;
  f.env->CrashNode(2);
  auto run = [&]() -> sim::Task<> { co_await f.env->tracker().PollOnce(); };
  f.engine.Spawn(run());
  f.engine.Run();
  for (const auto& entry : f.env->tracker().snapshot()) {
    EXPECT_NE(entry.node, 2u);
  }
}

TEST(SpongeServerTest, RemoteAllocateWriteReadFree) {
  ServicesFixture f;
  TaskContext task = f.env->StartTask(0);
  ChunkOwner owner{task.task_id, 0};
  Status status;
  uint64_t got_size = 0;
  auto run = [&]() -> sim::Task<> {
    SpongeServer& server = f.env->server(1);
    auto handle = co_await server.RemoteAllocate(0, owner);
    if (!handle.ok()) {
      status = handle.status();
      co_return;
    }
    ByteRuns data;
    data.AppendZeros(MiB(1));
    status = co_await server.RemoteWrite(0, *handle, owner, std::move(data));
    if (!status.ok()) co_return;
    auto read = co_await server.RemoteRead(0, *handle, owner);
    if (!read.ok()) {
      status = read.status();
      co_return;
    }
    got_size = read->size();
    status = co_await server.RemoteFree(0, *handle, owner);
  };
  f.engine.Spawn(run());
  f.engine.Run();
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(got_size, MiB(1));
  EXPECT_EQ(f.env->server(1).free_bytes(), MiB(4));
  EXPECT_EQ(f.env->server(1).remote_allocations(), 1u);
}

TEST(SpongeServerTest, WrongOwnerCannotTouchChunk) {
  ServicesFixture f;
  ChunkOwner owner{77, 0};
  ChunkOwner thief{78, 2};
  Status status;
  auto run = [&]() -> sim::Task<> {
    SpongeServer& server = f.env->server(1);
    auto handle = co_await server.RemoteAllocate(0, owner);
    auto read = co_await server.RemoteRead(2, *handle, thief);
    status = read.status();
  };
  f.engine.Spawn(run());
  f.engine.Run();
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST(SpongeServerTest, QuotaLimitsPerTaskChunks) {
  SpongeServerConfig server_config;
  server_config.quota_chunks_per_task = 2;
  ServicesFixture f(server_config);
  ChunkOwner owner{55, 0};
  Status third;
  auto run = [&]() -> sim::Task<> {
    SpongeServer& server = f.env->server(1);
    (void)co_await server.RemoteAllocate(0, owner);
    (void)co_await server.RemoteAllocate(0, owner);
    auto blocked = co_await server.RemoteAllocate(0, owner);
    third = blocked.status();
    // A different task still gets memory.
    auto other = co_await server.RemoteAllocate(0, ChunkOwner{56, 0});
    EXPECT_TRUE(other.ok());
  };
  f.engine.Spawn(run());
  f.engine.Run();
  EXPECT_EQ(third.code(), StatusCode::kResourceExhausted);
}

TEST(SpongeServerTest, GcReclaimsOrphanedLocalChunks) {
  ServicesFixture f;
  TaskContext task = f.env->StartTask(1);
  ChunkOwner owner{task.task_id, 1};
  (void)f.env->server(1).pool().Allocate(owner);
  (void)f.env->server(1).pool().Allocate(owner);
  // The task dies without freeing its chunks.
  f.env->EndTask(task);
  uint64_t reclaimed = 0;
  auto run = [&]() -> sim::Task<> {
    reclaimed = co_await f.env->server(1).GcSweep();
  };
  f.engine.Spawn(run());
  f.engine.Run();
  EXPECT_EQ(reclaimed, 2u);
  EXPECT_EQ(f.env->server(1).free_bytes(), MiB(4));
}

TEST(SpongeServerTest, GcChecksRemoteOwnersViaPeerServer) {
  ServicesFixture f;
  // Task on node 0 holding a chunk on node 2, then dies.
  TaskContext dead = f.env->StartTask(0);
  TaskContext alive = f.env->StartTask(0);
  (void)f.env->server(2).pool().Allocate(ChunkOwner{dead.task_id, 0});
  (void)f.env->server(2).pool().Allocate(ChunkOwner{alive.task_id, 0});
  f.env->EndTask(dead);
  uint64_t reclaimed = 0;
  auto run = [&]() -> sim::Task<> {
    reclaimed = co_await f.env->server(2).GcSweep();
  };
  f.engine.Spawn(run());
  f.engine.Run();
  EXPECT_EQ(reclaimed, 1u);
  // The live task's chunk survives.
  EXPECT_EQ(f.env->server(2).pool().AllocatedChunks().size(), 1u);
}

TEST(SpongeServerTest, PeriodicGcLoopCleansUpAfterDeadTask) {
  SpongeServerConfig server_config;
  server_config.gc_period = Seconds(10);
  ServicesFixture f(server_config);
  TaskContext task = f.env->StartTask(1);
  (void)f.env->server(1).pool().Allocate(ChunkOwner{task.task_id, 1});
  f.env->StartServices();
  f.env->EndTask(task);
  f.engine.RunUntil(Seconds(25));
  EXPECT_EQ(f.env->server(1).pool().AllocatedChunks().size(), 0u);
  f.env->StopServices();
  f.engine.Run();
}

TEST(SpongeServerTest, CrashedServerRejectsRemoteOps) {
  ServicesFixture f;
  f.env->CrashNode(1);
  Status status;
  auto run = [&]() -> sim::Task<> {
    auto handle = co_await f.env->server(1).RemoteAllocate(0,
                                                           ChunkOwner{5, 0});
    status = handle.status();
  };
  f.engine.Spawn(run());
  f.engine.Run();
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  f.env->RestartNode(1);
  // Stateless restart: empty pool, fully available again.
  EXPECT_EQ(f.env->server(1).free_bytes(), MiB(4));
}

TEST(FailureModelTest, ProbabilityFormula) {
  // With MTTF = 100 months and a 2-hour task on 1 machine the failure
  // probability is tiny (the paper's argument for why spreading spills is
  // safe).
  Duration mttf = Minutes(100.0 * 30 * 24 * 60);
  double p1 = TaskFailureProbability(1, Minutes(120), mttf);
  EXPECT_LT(p1, 1e-4);
  // Spreading over 30 machines stays small.
  double p30 = TaskFailureProbability(30, Minutes(120), mttf);
  EXPECT_LT(p30, 1e-2);
  EXPECT_GT(p30, p1);
  // Monotone in every argument.
  EXPECT_GT(TaskFailureProbability(30, Minutes(240), mttf), p30);
  EXPECT_EQ(TaskFailureProbability(0, Minutes(60), mttf), 0.0);
  // Sanity: N*t/MTTF = ln(2) gives exactly 0.5.
  double half = TaskFailureProbability(
      1, static_cast<Duration>(0.6931471805599453 * kSecond), Seconds(1));
  EXPECT_NEAR(half, 0.5, 1e-6);
}

TEST(FailureInjectorTest, ScheduledCrashAndRestart) {
  ServicesFixture f;
  FailureInjector injector(f.env.get(), 1);
  injector.ScheduleCrash(2, Seconds(5), /*downtime=*/Seconds(10));
  f.engine.RunUntil(Seconds(6));
  EXPECT_FALSE(f.env->server(2).alive());
  f.engine.RunUntil(Seconds(16));
  EXPECT_TRUE(f.env->server(2).alive());
}

TEST(FailureInjectorTest, PoissonCrashCountMatchesRate) {
  ServicesFixture f;
  FailureInjector injector(f.env.get(), 7);
  // MTTF = 1 hour, horizon = 10 hours, 4 nodes: expect ~40 crashes.
  size_t n = injector.SchedulePoissonCrashes(Minutes(60), Minutes(600),
                                             Seconds(1));
  EXPECT_GT(n, 20u);
  EXPECT_LT(n, 70u);
}

TEST(FailureInjectorTest, PoissonScheduleIsDeterministicPerSeed) {
  // All randomness is consumed at schedule time, so two injectors with the
  // same seed produce identical fault timelines — the property the chaos
  // test's determinism check rests on.
  ServicesFixture f;
  FailureInjector a(f.env.get(), 99);
  FailureInjector b(f.env.get(), 99);
  FailureInjector other(f.env.get(), 100);
  size_t na = a.SchedulePoissonCrashes(Minutes(60), Minutes(600), Seconds(1));
  size_t nb = b.SchedulePoissonCrashes(Minutes(60), Minutes(600), Seconds(1));
  size_t nc =
      other.SchedulePoissonCrashes(Minutes(60), Minutes(600), Seconds(1));
  EXPECT_EQ(na, nb);
  ASSERT_FALSE(a.schedule().empty());
  EXPECT_TRUE(a.schedule() == b.schedule());
  EXPECT_FALSE(nc == na && other.schedule() == a.schedule());
}

TEST(FailureInjectorTest, ChaosScheduleIsDeterministicPerSeed) {
  ServicesFixture f;
  FailureInjector a(f.env.get(), 5);
  FailureInjector b(f.env.get(), 5);
  ChaosOptions options;
  options.horizon = Seconds(60);
  options.num_faults = 16;
  EXPECT_EQ(a.ScheduleChaos(options), 16u);
  EXPECT_EQ(b.ScheduleChaos(options), 16u);
  EXPECT_TRUE(a.schedule() == b.schedule());
  // The schedule spans more than one fault kind.
  bool mixed = false;
  for (const FaultEvent& event : a.schedule()) {
    if (event.kind != a.schedule()[0].kind) mixed = true;
    EXPECT_GE(event.at, options.start);
    EXPECT_LE(event.at, options.horizon);
    EXPECT_LT(event.node, 4u);
  }
  EXPECT_TRUE(mixed);
}

TEST(FailureInjectorTest, CrashMidAsyncRemoteWriteFallsDownCascade) {
  // A file spills asynchronously; every remote peer crashes while those
  // writes are still in flight. The hardened client turns the lost
  // servers into bounced candidates, the cascade falls through to disk,
  // and Close() still commits every byte.
  sim::Engine engine;
  cluster::ClusterConfig cc;
  cc.num_nodes = 4;
  cc.node.sponge_memory = MiB(4);
  // A slow NIC keeps the remote writes on the wire (a ~1 s transfer per
  // chunk) while the local-socket appends finish in milliseconds, so the
  // crashes below are guaranteed to land before any remote commit.
  cc.network.bandwidth = 1.0 * 1024 * 1024;
  cluster::Cluster cluster(&engine, cc);
  cluster::Dfs dfs(&cluster);
  SpongeConfig config;
  config.async_write = true;
  SpongeEnv env(&cluster, &dfs, config);
  auto prime = [&]() -> sim::Task<> { co_await env.tracker().PollOnce(); };
  engine.Spawn(prime());
  engine.Run();

  TaskContext task = env.StartTask(0);
  SpongeFile file(&env, &task, "survivor");
  Rng rng(3);
  Checksum written;
  Checksum read_back;
  uint64_t read_bytes = 0;
  Status status;
  auto run = [&]() -> sim::Task<> {
    ByteRuns data;
    for (int i = 0; i < 7; ++i) {
      std::string block(MiB(1), '\0');
      for (auto& c : block) c = static_cast<char>(rng.Uniform(256));
      written.Update(Slice(block));
      data.AppendLiteral(Slice(block));
    }
    status = co_await file.Append(std::move(data));
    if (!status.ok()) co_return;
    // No simulated time passes between Append returning and the crashes:
    // every in-flight remote write is now doomed.
    env.CrashNode(1);
    env.CrashNode(2);
    env.CrashNode(3);
    status = co_await file.Close();
    if (!status.ok()) co_return;
    while (true) {
      auto chunk = co_await file.ReadNext();
      if (!chunk.ok()) {
        status = chunk.status();
        co_return;
      }
      if (chunk->empty()) break;
      auto bytes = chunk->ToBytes();
      read_back.Update(Slice(bytes));
      read_bytes += bytes.size();
    }
    co_await file.Delete();
  };
  engine.Spawn(run());
  engine.Run();
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(read_bytes, MiB(7));
  EXPECT_EQ(read_back.digest(), written.digest());
  EXPECT_TRUE(env.server(0).pool().AllocatedChunks().empty());
}

TEST(RpcHardeningTest, HungServerTripsBreakerThenRecovers) {
  // A hung server answers nothing: each attempt times out, the breaker
  // trips after the configured streak, and once the hang clears a
  // half-open probe readmits the server.
  ServicesFixture f;
  FailureInjector injector(f.env.get(), 1);
  injector.ScheduleHang(/*node=*/1, /*at=*/Millis(1),
                        /*duration=*/Seconds(30));
  ChunkOwner owner{91, 0};
  auto run = [&]() -> sim::Task<> {
    co_await f.engine.Delay(Millis(10));  // the hang is now active
    auto first = co_await HardenedCall<Result<ChunkHandle>>(
        &f.engine, &f.env->health(), f.env->config().rpc,
        &f.env->rpc_rng(), 1,
        [&]() { return f.env->server(1).RemoteAllocate(0, owner); });
    EXPECT_FALSE(first.ok());
    EXPECT_TRUE(IsRpcTimeout(first.status())) << first.status().ToString();
    EXPECT_TRUE(f.env->health().IsOpen(1));
    EXPECT_EQ(f.env->health().trips(), 1u);
    // Mid-cooldown the breaker sheds requests without touching the wire.
    EXPECT_FALSE(f.env->health().AllowRequest(1));
    co_await f.engine.Delay(Seconds(40));  // hang cleared, cooldown over
    EXPECT_TRUE(f.env->health().AllowRequest(1));  // the half-open probe
    auto probe = co_await HardenedCall<Result<ChunkHandle>>(
        &f.engine, &f.env->health(), f.env->config().rpc,
        &f.env->rpc_rng(), 1,
        [&]() { return f.env->server(1).RemoteAllocate(0, owner); });
    EXPECT_TRUE(probe.ok()) << probe.status().ToString();
    EXPECT_FALSE(f.env->health().IsOpen(1));
    EXPECT_EQ(f.env->health().recoveries(), 1u);
  };
  f.engine.Spawn(run());
  f.engine.Run();
}

TEST(BitRotTest, CorruptedChunkReadsAsUnavailable) {
  // Bit rot flips one stored byte; the read-side checksum catches it and
  // reports the chunk lost instead of returning silently wrong data.
  ServicesFixture f;
  auto prime = [&]() -> sim::Task<> { co_await f.env->tracker().PollOnce(); };
  f.engine.Spawn(prime());
  f.engine.Run();
  TaskContext task = f.env->StartTask(0);
  SpongeFile file(f.env.get(), &task, "rotted");
  FailureInjector injector(f.env.get(), 8);
  Status status;
  Status read_status;
  auto run = [&]() -> sim::Task<> {
    ByteRuns data;
    data.AppendZeros(MiB(2));
    status = co_await file.Append(std::move(data));
    if (!status.ok()) co_return;
    status = co_await file.Close();
    if (!status.ok()) co_return;
    injector.ScheduleBitRot(/*node=*/0, f.engine.now() + Millis(1));
    co_await f.engine.Delay(Millis(2));
    while (true) {
      auto chunk = co_await file.ReadNext();
      if (!chunk.ok()) {
        read_status = chunk.status();
        co_return;
      }
      if (chunk->empty()) break;
    }
  };
  f.engine.Spawn(run());
  f.engine.Run();
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(read_status.code(), StatusCode::kUnavailable);
  EXPECT_NE(read_status.message().find("checksum"), std::string::npos)
      << read_status.ToString();
}

}  // namespace
}  // namespace spongefiles::sponge
