#include <gtest/gtest.h>

#include <memory>

#include "cluster/cluster.h"
#include "cluster/dfs.h"
#include "common/units.h"
#include "sim/engine.h"
#include "sponge/failure.h"
#include "sponge/memory_tracker.h"
#include "sponge/sponge_env.h"
#include "sponge/sponge_file.h"
#include "sponge/sponge_server.h"

namespace spongefiles::sponge {
namespace {

struct ServicesFixture {
  sim::Engine engine;
  std::unique_ptr<cluster::Cluster> cluster_;
  std::unique_ptr<cluster::Dfs> dfs;
  std::unique_ptr<SpongeEnv> env;

  explicit ServicesFixture(SpongeServerConfig server_config = {},
                           MemoryTrackerConfig tracker_config = {},
                           uint64_t sponge_per_node = MiB(4)) {
    cluster::ClusterConfig cc;
    cc.num_nodes = 4;
    cc.node.sponge_memory = sponge_per_node;
    cluster_ = std::make_unique<cluster::Cluster>(&engine, cc);
    dfs = std::make_unique<cluster::Dfs>(cluster_.get());
    env = std::make_unique<SpongeEnv>(cluster_.get(), dfs.get(),
                                      SpongeConfig{}, ChunkPoolConfig{},
                                      server_config, tracker_config);
  }
};

TEST(TaskRegistryTest, RegisterAndLiveness) {
  TaskRegistry registry;
  uint64_t id = registry.Register(3);
  EXPECT_TRUE(registry.IsAliveOn(id, 3));
  EXPECT_FALSE(registry.IsAliveOn(id, 2));
  EXPECT_EQ(*registry.NodeOf(id), 3u);
  registry.Deregister(id);
  EXPECT_FALSE(registry.IsAliveOn(id, 3));
  EXPECT_FALSE(registry.NodeOf(id).ok());
}

TEST(TaskRegistryTest, IdsNeverZeroAndUnique) {
  TaskRegistry registry;
  uint64_t a = registry.Register(0);
  uint64_t b = registry.Register(0);
  EXPECT_NE(a, 0u);
  EXPECT_NE(b, 0u);
  EXPECT_NE(a, b);
}

TEST(MemoryTrackerTest, PollBuildsSortedFreeList) {
  ServicesFixture f;
  // Consume chunks so free space differs per node.
  (void)f.env->server(1).pool().Allocate(ChunkOwner{1, 1});
  (void)f.env->server(1).pool().Allocate(ChunkOwner{1, 1});
  (void)f.env->server(2).pool().Allocate(ChunkOwner{1, 2});
  auto run = [&]() -> sim::Task<> { co_await f.env->tracker().PollOnce(); };
  f.engine.Spawn(run());
  f.engine.Run();
  const auto& list = f.env->tracker().snapshot();
  ASSERT_EQ(list.size(), 4u);
  for (size_t i = 1; i < list.size(); ++i) {
    EXPECT_GE(list[i - 1].free_bytes, list[i].free_bytes);
  }
}

TEST(MemoryTrackerTest, SnapshotGoesStaleUntilNextPoll) {
  ServicesFixture f;
  auto run = [&]() -> sim::Task<> { co_await f.env->tracker().PollOnce(); };
  f.engine.Spawn(run());
  f.engine.Run();
  uint64_t before = f.env->tracker().snapshot()[0].free_bytes;
  // Consume memory: the snapshot must NOT change until re-polled.
  (void)f.env->server(0).pool().Allocate(ChunkOwner{1, 0});
  for (const auto& entry : f.env->tracker().snapshot()) {
    if (entry.node == 0) {
      EXPECT_EQ(entry.free_bytes, before);
    }
  }
  f.engine.Spawn(run());
  f.engine.Run();
  bool updated = false;
  for (const auto& entry : f.env->tracker().snapshot()) {
    if (entry.node == 0) updated = entry.free_bytes < before;
  }
  EXPECT_TRUE(updated);
}

TEST(MemoryTrackerTest, PeriodicLoopKeepsPolling) {
  MemoryTrackerConfig tracker_config;
  tracker_config.poll_period = Seconds(1);
  ServicesFixture f(SpongeServerConfig{}, tracker_config);
  f.env->tracker().Start();
  f.engine.RunUntil(Seconds(5.5));
  EXPECT_GE(f.env->tracker().polls_completed(), 5u);
  f.env->StopServices();
  f.engine.Run();
}

TEST(MemoryTrackerTest, DeadServersExcludedFromList) {
  ServicesFixture f;
  f.env->CrashNode(2);
  auto run = [&]() -> sim::Task<> { co_await f.env->tracker().PollOnce(); };
  f.engine.Spawn(run());
  f.engine.Run();
  for (const auto& entry : f.env->tracker().snapshot()) {
    EXPECT_NE(entry.node, 2u);
  }
}

TEST(SpongeServerTest, RemoteAllocateWriteReadFree) {
  ServicesFixture f;
  TaskContext task = f.env->StartTask(0);
  ChunkOwner owner{task.task_id, 0};
  Status status;
  uint64_t got_size = 0;
  auto run = [&]() -> sim::Task<> {
    SpongeServer& server = f.env->server(1);
    auto handle = co_await server.RemoteAllocate(0, owner);
    if (!handle.ok()) {
      status = handle.status();
      co_return;
    }
    ByteRuns data;
    data.AppendZeros(MiB(1));
    status = co_await server.RemoteWrite(0, *handle, owner, std::move(data));
    if (!status.ok()) co_return;
    auto read = co_await server.RemoteRead(0, *handle, owner);
    if (!read.ok()) {
      status = read.status();
      co_return;
    }
    got_size = read->size();
    status = co_await server.RemoteFree(0, *handle, owner);
  };
  f.engine.Spawn(run());
  f.engine.Run();
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(got_size, MiB(1));
  EXPECT_EQ(f.env->server(1).free_bytes(), MiB(4));
  EXPECT_EQ(f.env->server(1).remote_allocations(), 1u);
}

TEST(SpongeServerTest, WrongOwnerCannotTouchChunk) {
  ServicesFixture f;
  ChunkOwner owner{77, 0};
  ChunkOwner thief{78, 2};
  Status status;
  auto run = [&]() -> sim::Task<> {
    SpongeServer& server = f.env->server(1);
    auto handle = co_await server.RemoteAllocate(0, owner);
    auto read = co_await server.RemoteRead(2, *handle, thief);
    status = read.status();
  };
  f.engine.Spawn(run());
  f.engine.Run();
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST(SpongeServerTest, QuotaLimitsPerTaskChunks) {
  SpongeServerConfig server_config;
  server_config.quota_chunks_per_task = 2;
  ServicesFixture f(server_config);
  ChunkOwner owner{55, 0};
  Status third;
  auto run = [&]() -> sim::Task<> {
    SpongeServer& server = f.env->server(1);
    (void)co_await server.RemoteAllocate(0, owner);
    (void)co_await server.RemoteAllocate(0, owner);
    auto blocked = co_await server.RemoteAllocate(0, owner);
    third = blocked.status();
    // A different task still gets memory.
    auto other = co_await server.RemoteAllocate(0, ChunkOwner{56, 0});
    EXPECT_TRUE(other.ok());
  };
  f.engine.Spawn(run());
  f.engine.Run();
  EXPECT_EQ(third.code(), StatusCode::kResourceExhausted);
}

TEST(SpongeServerTest, GcReclaimsOrphanedLocalChunks) {
  ServicesFixture f;
  TaskContext task = f.env->StartTask(1);
  ChunkOwner owner{task.task_id, 1};
  (void)f.env->server(1).pool().Allocate(owner);
  (void)f.env->server(1).pool().Allocate(owner);
  // The task dies without freeing its chunks.
  f.env->EndTask(task);
  uint64_t reclaimed = 0;
  auto run = [&]() -> sim::Task<> {
    reclaimed = co_await f.env->server(1).GcSweep();
  };
  f.engine.Spawn(run());
  f.engine.Run();
  EXPECT_EQ(reclaimed, 2u);
  EXPECT_EQ(f.env->server(1).free_bytes(), MiB(4));
}

TEST(SpongeServerTest, GcChecksRemoteOwnersViaPeerServer) {
  ServicesFixture f;
  // Task on node 0 holding a chunk on node 2, then dies.
  TaskContext dead = f.env->StartTask(0);
  TaskContext alive = f.env->StartTask(0);
  (void)f.env->server(2).pool().Allocate(ChunkOwner{dead.task_id, 0});
  (void)f.env->server(2).pool().Allocate(ChunkOwner{alive.task_id, 0});
  f.env->EndTask(dead);
  uint64_t reclaimed = 0;
  auto run = [&]() -> sim::Task<> {
    reclaimed = co_await f.env->server(2).GcSweep();
  };
  f.engine.Spawn(run());
  f.engine.Run();
  EXPECT_EQ(reclaimed, 1u);
  // The live task's chunk survives.
  EXPECT_EQ(f.env->server(2).pool().AllocatedChunks().size(), 1u);
}

TEST(SpongeServerTest, PeriodicGcLoopCleansUpAfterDeadTask) {
  SpongeServerConfig server_config;
  server_config.gc_period = Seconds(10);
  ServicesFixture f(server_config);
  TaskContext task = f.env->StartTask(1);
  (void)f.env->server(1).pool().Allocate(ChunkOwner{task.task_id, 1});
  f.env->StartServices();
  f.env->EndTask(task);
  f.engine.RunUntil(Seconds(25));
  EXPECT_EQ(f.env->server(1).pool().AllocatedChunks().size(), 0u);
  f.env->StopServices();
  f.engine.Run();
}

TEST(SpongeServerTest, CrashedServerRejectsRemoteOps) {
  ServicesFixture f;
  f.env->CrashNode(1);
  Status status;
  auto run = [&]() -> sim::Task<> {
    auto handle = co_await f.env->server(1).RemoteAllocate(0,
                                                           ChunkOwner{5, 0});
    status = handle.status();
  };
  f.engine.Spawn(run());
  f.engine.Run();
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  f.env->RestartNode(1);
  // Stateless restart: empty pool, fully available again.
  EXPECT_EQ(f.env->server(1).free_bytes(), MiB(4));
}

TEST(FailureModelTest, ProbabilityFormula) {
  // With MTTF = 100 months and a 2-hour task on 1 machine the failure
  // probability is tiny (the paper's argument for why spreading spills is
  // safe).
  Duration mttf = Minutes(100.0 * 30 * 24 * 60);
  double p1 = TaskFailureProbability(1, Minutes(120), mttf);
  EXPECT_LT(p1, 1e-4);
  // Spreading over 30 machines stays small.
  double p30 = TaskFailureProbability(30, Minutes(120), mttf);
  EXPECT_LT(p30, 1e-2);
  EXPECT_GT(p30, p1);
  // Monotone in every argument.
  EXPECT_GT(TaskFailureProbability(30, Minutes(240), mttf), p30);
  EXPECT_EQ(TaskFailureProbability(0, Minutes(60), mttf), 0.0);
  // Sanity: N*t/MTTF = ln(2) gives exactly 0.5.
  double half = TaskFailureProbability(
      1, static_cast<Duration>(0.6931471805599453 * kSecond), Seconds(1));
  EXPECT_NEAR(half, 0.5, 1e-6);
}

TEST(FailureInjectorTest, ScheduledCrashAndRestart) {
  ServicesFixture f;
  FailureInjector injector(f.env.get(), 1);
  injector.ScheduleCrash(2, Seconds(5), /*downtime=*/Seconds(10));
  f.engine.RunUntil(Seconds(6));
  EXPECT_FALSE(f.env->server(2).alive());
  f.engine.RunUntil(Seconds(16));
  EXPECT_TRUE(f.env->server(2).alive());
}

TEST(FailureInjectorTest, PoissonCrashCountMatchesRate) {
  ServicesFixture f;
  FailureInjector injector(f.env.get(), 7);
  // MTTF = 1 hour, horizon = 10 hours, 4 nodes: expect ~40 crashes.
  size_t n = injector.SchedulePoissonCrashes(Minutes(60), Minutes(600),
                                             Seconds(1));
  EXPECT_GT(n, 20u);
  EXPECT_LT(n, 70u);
}

}  // namespace
}  // namespace spongefiles::sponge
