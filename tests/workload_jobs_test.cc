#include <gtest/gtest.h>

#include "common/units.h"
#include "mapred/job.h"
#include "workload/testbed.h"

namespace spongefiles::workload {
namespace {

TEST(JobBuildersTest, MedianMapEmitsPaddedSortKeys) {
  Testbed bed;
  NumbersDatasetConfig data;
  data.count = 101;
  NumbersDataset numbers(&bed.dfs(), "nums", data);
  mapred::JobConfig config = MakeMedianJob(&numbers,
                                           mapred::SpillMode::kDisk);
  ASSERT_TRUE(static_cast<bool>(config.map_fn));
  mapred::Record in;
  in.number = 42;
  in.size = 100;
  std::vector<mapred::Record> out;
  config.map_fn(in, &out);
  ASSERT_EQ(out.size(), 1u);
  // Zero-padded keys sort lexicographically in numeric order.
  EXPECT_EQ(out[0].key.size(), 20u);
  mapred::Record in2;
  in2.number = 7;
  std::vector<mapred::Record> out2;
  config.map_fn(in2, &out2);
  EXPECT_LT(out2[0].key, out[0].key);
  EXPECT_EQ(config.num_reducers, 1);
}

TEST(JobBuildersTest, AnchortextPartitionerIsolatesEnglish) {
  Testbed bed;
  WebDatasetConfig data;
  data.total_bytes = MiB(128);
  WebDataset web(&bed.dfs(), "web", data);
  mapred::JobConfig config =
      MakeAnchortextJob(&web, mapred::SpillMode::kSponge, 10, 8);
  ASSERT_TRUE(static_cast<bool>(config.partitioner));
  mapred::Record english;
  english.key = "english";
  EXPECT_EQ(config.partitioner(english, 8), 0u);
  // Other languages never land on partition 0.
  for (const char* lang : {"french", "german", "spanish", "korean"}) {
    mapred::Record r;
    r.key = lang;
    size_t p = config.partitioner(r, 8);
    EXPECT_GT(p, 0u) << lang;
    EXPECT_LT(p, 8u) << lang;
  }
}

TEST(JobBuildersTest, AnchortextProjectionShrinksTuples) {
  Testbed bed;
  WebDatasetConfig data;
  data.total_bytes = MiB(128);
  WebDataset web(&bed.dfs(), "web", data);
  mapred::JobConfig config =
      MakeAnchortextJob(&web, mapred::SpillMode::kSponge, 10, 8,
                        /*projected_size=*/4096);
  mapred::Record page = web.GenerateSplit(0)[0];
  std::vector<mapred::Record> out;
  config.map_fn(page, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].size, 4096u);
  // Domain and language are projected away; only terms remain.
  EXPECT_EQ(out[0].fields.size(), page.fields.size() - 2);
  EXPECT_EQ(out[0].key, page.fields[1]);
}

TEST(JobBuildersTest, SpamQuantilesKeepsFullTuples) {
  Testbed bed;
  WebDatasetConfig data;
  data.total_bytes = MiB(128);
  WebDataset web(&bed.dfs(), "web", data);
  mapred::JobConfig config =
      MakeSpamQuantilesJob(&web, mapred::SpillMode::kDisk);
  mapred::Record page = web.GenerateSplit(0)[0];
  std::vector<mapred::Record> out;
  config.map_fn(page, &out);
  ASSERT_EQ(out.size(), 1u);
  // No projection: the full logical row shuffles.
  EXPECT_EQ(out[0].size, page.size);
  EXPECT_EQ(out[0].key, page.fields[0]);

  // The giant domain goes to partition 0, everything else elsewhere.
  mapred::Record giant;
  giant.key = WebDataset::DomainName(0);
  EXPECT_EQ(config.partitioner(giant, 8), 0u);
  mapred::Record other;
  other.key = WebDataset::DomainName(17);
  EXPECT_GT(config.partitioner(other, 8), 0u);
}

TEST(JobBuildersTest, GrepJobScansWithoutOutput) {
  Testbed bed;
  ScanDataset scan(&bed.dfs(), "grepdata", GiB(1));
  auto cancel = std::make_shared<bool>(false);
  mapred::JobConfig config = MakeGrepJob(&scan, cancel, 14.0);
  EXPECT_FALSE(static_cast<bool>(config.reducer_factory));
  EXPECT_EQ(config.cancel, cancel);
  // Scan bandwidth tuned so a 128 MB split costs ~14 s of CPU.
  double seconds = static_cast<double>(MiB(128)) / config.map_scan_bandwidth;
  EXPECT_NEAR(seconds, 14.0, 0.1);
}

TEST(CpuMeterTest, BatchesDebtIntoSleeps) {
  sim::Engine engine;
  mapred::CpuMeter meter(&engine);
  auto run = [&]() -> sim::Task<> {
    for (int i = 0; i < 1000; ++i) {
      co_await meter.Charge(Micros(10));
    }
    co_await meter.Flush();
  };
  engine.Spawn(run());
  uint64_t events = engine.Run();
  EXPECT_EQ(engine.now(), Millis(10));
  EXPECT_EQ(meter.total_charged(), Millis(10));
  // Far fewer engine events than charges (batched at >= 1 ms).
  EXPECT_LT(events, 100u);
}

TEST(JobResultTest, StragglerIsLongestReduce) {
  mapred::JobResult result;
  EXPECT_EQ(result.straggler(), nullptr);
  mapred::TaskStats a;
  a.runtime = Seconds(10);
  mapred::TaskStats b;
  b.runtime = Seconds(99);
  result.reduce_tasks = {a, b};
  ASSERT_NE(result.straggler(), nullptr);
  EXPECT_EQ(result.straggler()->runtime, Seconds(99));
}

}  // namespace
}  // namespace spongefiles::workload
