// Chunk replication & crash recovery (the robustness tentpole's unit
// tier): replica placement is rack-diverse and directory-tracked, reads
// fail over to the replica when the primary is lost (crash, corruption),
// a losing attempt's replicas are reclaimed by the ordinary dead-task GC,
// and the tracker-driven repair loop restores the two-copy invariant after
// a replica holder dies — including the race where the owning task commits
// (and deregisters) while repair is in flight.

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/dfs.h"
#include "common/checksum.h"
#include "common/random.h"
#include "common/units.h"
#include "obs/metrics.h"
#include "sim/engine.h"
#include "sponge/failure.h"
#include "sponge/repair.h"
#include "sponge/sponge_env.h"
#include "sponge/sponge_file.h"

namespace spongefiles::sponge {
namespace {

// An 8-node, 2-rack cluster with small pools and replication on. No
// background services run unless a test starts them, so sweeps and repair
// happen exactly when the test says.
struct ReplicationFixture {
  sim::Engine engine;
  std::unique_ptr<cluster::Cluster> cluster_;
  std::unique_ptr<cluster::Dfs> dfs;
  std::unique_ptr<SpongeEnv> env;
  TaskContext task;

  explicit ReplicationFixture(SpongeConfig config = DefaultConfig()) {
    cluster::ClusterConfig cc;
    cc.num_nodes = 8;
    cc.nodes_per_rack = 4;
    cc.node.sponge_memory = MiB(4);
    cluster_ = std::make_unique<cluster::Cluster>(&engine, cc);
    dfs = std::make_unique<cluster::Dfs>(cluster_.get());
    env = std::make_unique<SpongeEnv>(cluster_.get(), dfs.get(), config);
    task = env->StartTask(0);
    // Prime the tracker (one poll + one gossip exchange) so queries see
    // both racks.
    auto prime = [](MemoryTracker* tracker) -> sim::Task<> {
      co_await tracker->PollOnce();
    };
    engine.Spawn(prime(&env->tracker()));
    engine.Run();
  }

  static SpongeConfig DefaultConfig() {
    SpongeConfig config;
    config.replication.enabled = true;
    return config;
  }

  // Hooks death detection up to the repair service the way StartServices
  // does, without starting the poll/GC loops.
  void WireRepair() {
    RepairService* repair = &env->repair();
    env->tracker().SetDeathListener(
        [repair](size_t node) { repair->NotifyServerDeath(node); });
  }

  // One tracker poll round (death detection fires here), then drain.
  void PollTracker() {
    auto poll = [](MemoryTracker* tracker) -> sim::Task<> {
      co_await tracker->PollOnce();
    };
    engine.Spawn(poll(&env->tracker()));
    engine.Run();
  }

  // GC-sweeps every server and returns the surviving allocated-chunk count.
  uint64_t SweepAll() {
    uint64_t remaining = 0;
    auto sweep = [](SpongeEnv* e, size_t nodes,
                    uint64_t* out) -> sim::Task<> {
      for (size_t n = 0; n < nodes; ++n) {
        (void)co_await e->server(n).GcSweep();
        *out += e->server(n).pool().AllocatedChunks().size();
      }
    };
    engine.Spawn(sweep(env.get(), cluster_->size(), &remaining));
    engine.Run();
    return remaining;
  }
};

std::string RandomData(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::string out(n, '\0');
  for (auto& c : out) c = static_cast<char>(rng.Uniform(256));
  return out;
}

Status WriteAndClose(sim::Engine* engine, SpongeFile* file,
                     const std::string& data) {
  Status status;
  auto run = [](SpongeFile* f, const std::string* d,
                Status* out) -> sim::Task<> {
    *out = co_await f->AppendBytes(Slice(*d));
    if (out->ok()) *out = co_await f->Close();
  };
  engine->Spawn(run(file, &data, &status));
  engine->Run();
  return status;
}

// Reads the whole file back; returns OK and fills `checksum` on success.
Status ReadBack(sim::Engine* engine, SpongeFile* file, uint64_t* checksum,
                uint64_t* bytes) {
  Status status;
  auto run = [](SpongeFile* f, Status* out, uint64_t* sum_out,
                uint64_t* bytes_out) -> sim::Task<> {
    Checksum sum;
    while (true) {
      auto chunk = co_await f->ReadNext();
      if (!chunk.ok()) {
        *out = chunk.status();
        co_return;
      }
      if (chunk->empty()) break;
      auto raw = chunk->ToBytes();
      sum.Update(Slice(raw));
      *bytes_out += raw.size();
    }
    *sum_out = sum.digest();
    *out = Status::OK();
  };
  engine->Spawn(run(file, &status, checksum, bytes));
  engine->Run();
  return status;
}

// Corrupts one byte of every pool chunk on `node` owned by `task_id` with
// the given replica mark. Returns how many chunks were hit.
size_t CorruptOwnedChunks(SpongeEnv* env, size_t node, uint64_t task_id,
                          bool replica) {
  size_t hit = 0;
  for (auto& [handle, owner] : env->server(node).pool().AllocatedChunks()) {
    if (owner.task_id != task_id || owner.replica != replica) continue;
    ByteRuns* data = env->server(node).pool().chunk_data(handle);
    if (data != nullptr && data->size() > 0) {
      data->CorruptByte(0);
      ++hit;
    }
  }
  return hit;
}

TEST(SpongeReplicationTest, ReplicasAreRackDiverseAndTracked) {
  ReplicationFixture f;
  SpongeFile file(f.env.get(), &f.task, "diverse");
  ASSERT_TRUE(WriteAndClose(&f.engine, &file, RandomData(MiB(2), 7)).ok());

  EXPECT_EQ(file.stats().chunks_replicated, 2u);
  EXPECT_EQ(file.stats().bytes_replicated, MiB(2));
  ASSERT_EQ(f.env->replicas().size(), 2u);
  for (const auto& [id, entry] : f.env->replicas().chunks()) {
    ASSERT_EQ(entry.locations.size(), 2u);
    const ReplicaLocation& primary = entry.locations[0];
    const ReplicaLocation& replica = entry.locations[1];
    EXPECT_FALSE(primary.owner.replica);
    EXPECT_TRUE(replica.owner.replica);
    EXPECT_EQ(replica.owner.task_id, f.task.task_id);
    // Both racks have free pools, so the rack-diverse pass must win.
    EXPECT_NE(f.cluster_->rack_of(primary.node),
              f.cluster_->rack_of(replica.node));
  }

  auto cleanup = [](SpongeFile* sf) -> sim::Task<> { co_await sf->Delete(); };
  f.engine.Spawn(cleanup(&file));
  f.engine.Run();
  // Delete released both copies and forgot the directory entries.
  EXPECT_EQ(f.env->replicas().size(), 0u);
  EXPECT_EQ(f.SweepAll(), 0u);
}

TEST(SpongeReplicationTest, FailoverServesReplicaAfterPrimaryCrash) {
  ReplicationFixture f;
  SpongeFile file(f.env.get(), &f.task, "failover");
  std::string data = RandomData(3 * MiB(1) + 12345, 21);
  ASSERT_TRUE(WriteAndClose(&f.engine, &file, data).ok());
  ASSERT_EQ(file.stats().chunks_replicated, 4u);

  obs::Counter* won = obs::Registry::Default().counter(
      "sponge.read.failover.won");
  uint64_t won_before = won->value();

  // Fail-stop crash of the node holding every primary (the task's own
  // pool): local reads find the slots gone and must fail over.
  f.env->CrashNode(0);
  uint64_t checksum = 0;
  uint64_t bytes = 0;
  Status read = ReadBack(&f.engine, &file, &checksum, &bytes);
  ASSERT_TRUE(read.ok()) << read.ToString();
  EXPECT_EQ(bytes, data.size());
  EXPECT_EQ(checksum, Checksum::Of(Slice(data)));
  EXPECT_EQ(file.stats().replica_failovers, 4u);
  EXPECT_EQ(won->value() - won_before, 4u);
}

TEST(SpongeReplicationTest, CorruptedPrimaryFailsOverAndReplicaIsVerified) {
  ReplicationFixture f;
  SpongeFile file(f.env.get(), &f.task, "bitrot");
  std::string data = RandomData(MiB(1), 33);
  ASSERT_TRUE(WriteAndClose(&f.engine, &file, data).ok());
  ASSERT_EQ(file.stats().chunks_replicated, 1u);

  // Corrupt the primary copy only: the read detects the mismatch, fails
  // over, and the replica (verified against the same checksum) serves it.
  ASSERT_EQ(CorruptOwnedChunks(f.env.get(), 0, f.task.task_id,
                               /*replica=*/false),
            1u);
  uint64_t checksum = 0;
  uint64_t bytes = 0;
  Status read = ReadBack(&f.engine, &file, &checksum, &bytes);
  ASSERT_TRUE(read.ok()) << read.ToString();
  EXPECT_EQ(checksum, Checksum::Of(Slice(data)));
  EXPECT_EQ(file.stats().replica_failovers, 1u);
}

TEST(SpongeReplicationTest, CorruptingEveryCopyExhaustsFailover) {
  ReplicationFixture f;
  SpongeFile file(f.env.get(), &f.task, "allbad");
  ASSERT_TRUE(WriteAndClose(&f.engine, &file, RandomData(MiB(1), 34)).ok());
  ASSERT_EQ(f.env->replicas().size(), 1u);

  // Corrupt the primary and the replica: failover must not "rescue" the
  // read with bad bytes — the chunk is reported lost.
  ASSERT_EQ(CorruptOwnedChunks(f.env.get(), 0, f.task.task_id,
                               /*replica=*/false),
            1u);
  size_t replicas_hit = 0;
  for (size_t n = 1; n < f.cluster_->size(); ++n) {
    replicas_hit += CorruptOwnedChunks(f.env.get(), n, f.task.task_id,
                                       /*replica=*/true);
  }
  ASSERT_EQ(replicas_hit, 1u);

  obs::Counter* exhausted = obs::Registry::Default().counter(
      "sponge.read.failover.exhausted");
  uint64_t exhausted_before = exhausted->value();
  uint64_t checksum = 0;
  uint64_t bytes = 0;
  Status read = ReadBack(&f.engine, &file, &checksum, &bytes);
  EXPECT_EQ(read.code(), StatusCode::kUnavailable);
  EXPECT_EQ(exhausted->value() - exhausted_before, 1u);
}

TEST(SpongeReplicationTest, LosingAttemptReplicasReclaimedByGc) {
  ReplicationFixture f;
  // A second attempt that spills (with replicas), then loses the race:
  // it deregisters without Delete. GC must reclaim primaries AND replicas
  // (they share the attempt's task id).
  TaskContext loser = f.env->StartTask(1);
  auto file = std::make_unique<SpongeFile>(f.env.get(), &loser, "loser");
  ASSERT_TRUE(WriteAndClose(&f.engine, file.get(), RandomData(MiB(2), 5))
                  .ok());
  ASSERT_EQ(f.env->replicas().size(), 2u);
  f.env->EndTask(loser);

  EXPECT_EQ(f.SweepAll(), 0u);
}

TEST(SpongeReplicationTest, RepairRestoresTwoCopiesAfterHolderDeath) {
  ReplicationFixture f;
  f.WireRepair();
  SpongeFile file(f.env.get(), &f.task, "repair");
  std::string data = RandomData(MiB(1), 55);
  ASSERT_TRUE(WriteAndClose(&f.engine, &file, data).ok());
  ASSERT_EQ(f.env->replicas().size(), 1u);
  const ReplicatedChunk& entry = f.env->replicas().chunks().begin()->second;
  uint64_t chunk_id = entry.chunk_id;
  size_t holder = entry.locations[1].node;

  // Fail-stop crash of the replica holder. The next tracker poll detects
  // it, drops the dead location, and re-replicates from the survivor.
  f.env->CrashNode(holder);
  f.PollTracker();

  const ReplicatedChunk* repaired = f.env->replicas().Find(chunk_id);
  ASSERT_NE(repaired, nullptr);
  ASSERT_EQ(repaired->locations.size(), 2u);
  EXPECT_NE(repaired->locations[1].node, holder);
  EXPECT_TRUE(repaired->locations[1].owner.replica);
  EXPECT_EQ(f.env->repair().repairs_completed(), 1u);
  EXPECT_EQ(f.env->repair().repair_bytes(), MiB(1));
  EXPECT_GT(f.env->repair().active_time(), 0);

  // The repaired copy is real: crash the primary too and read through it.
  f.env->CrashNode(0);
  uint64_t checksum = 0;
  uint64_t bytes = 0;
  Status read = ReadBack(&f.engine, &file, &checksum, &bytes);
  ASSERT_TRUE(read.ok()) << read.ToString();
  EXPECT_EQ(checksum, Checksum::Of(Slice(data)));
  EXPECT_EQ(file.stats().replica_failovers, 1u);
}

TEST(SpongeReplicationTest, RepairRacingGcOnCommittingTask) {
  ReplicationFixture f;
  f.WireRepair();
  TaskContext committer = f.env->StartTask(2);
  auto file = std::make_unique<SpongeFile>(f.env.get(), &committer, "race");
  ASSERT_TRUE(WriteAndClose(&f.engine, file.get(), RandomData(MiB(1), 66))
                  .ok());
  ASSERT_EQ(f.env->replicas().size(), 1u);
  size_t holder = f.env->replicas().chunks().begin()->second.locations[1].node;

  // The holder dies AND the owning task commits (deregisters without
  // Delete — the GC owns its chunks now) before repair runs. Repair must
  // notice the dead owner, drop the entry instead of copying for a ghost,
  // and leave nothing for the sweep to find.
  f.env->CrashNode(holder);
  f.env->EndTask(committer);
  f.PollTracker();

  EXPECT_GE(f.env->repair().entries_dropped(), 1u);
  EXPECT_EQ(f.env->repair().repairs_completed(), 0u);
  EXPECT_EQ(f.env->replicas().size(), 0u);
  EXPECT_EQ(f.SweepAll(), 0u);
}

TEST(SpongeReplicationTest, ReplicationSkippedUnderPressure) {
  SpongeConfig config = ReplicationFixture::DefaultConfig();
  // An impossible pressure gate: no candidate ever qualifies, so every
  // chunk stays single-copy (best-effort, never an error).
  config.replication.min_free_fraction = 2.0;
  ReplicationFixture f(config);
  SpongeFile file(f.env.get(), &f.task, "pressure");
  obs::Counter* skipped = obs::Registry::Default().counter(
      "sponge.replica.skipped");
  uint64_t skipped_before = skipped->value();
  ASSERT_TRUE(WriteAndClose(&f.engine, &file, RandomData(MiB(2), 9)).ok());
  EXPECT_EQ(file.stats().chunks_replicated, 0u);
  EXPECT_EQ(f.env->replicas().size(), 0u);
  EXPECT_EQ(skipped->value() - skipped_before, 2u);
}

TEST(FaultKindTest, NamesRoundTripAndAreUnique) {
  std::set<std::string> names;
  for (FaultKind kind : kAllFaultKinds) {
    std::string name = FaultKindName(kind);
    EXPECT_NE(name, "?");
    EXPECT_TRUE(names.insert(name).second) << "duplicate name " << name;
    Result<FaultKind> back = FaultKindFromName(name);
    ASSERT_TRUE(back.ok()) << name;
    EXPECT_EQ(*back, kind);
  }
  // Every enumerator is in kAllFaultKinds (the switch in FaultKindName has
  // no default, so a new kind breaks the build; this breaks the array).
  EXPECT_EQ(names.size(), std::size(kAllFaultKinds));
  EXPECT_FALSE(FaultKindFromName("not-a-fault").ok());
}

}  // namespace
}  // namespace spongefiles::sponge
