#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "cluster/dfs.h"
#include "cluster/local_fs.h"
#include "common/units.h"
#include "sim/engine.h"

namespace spongefiles::cluster {
namespace {

struct FsFixture {
  sim::Engine engine;
  Disk disk;
  BufferCache cache;
  LocalFs fs;

  FsFixture()
      : disk(&engine, DiskConfig{}),
        cache(&engine, &disk, CacheConfig()),
        fs(&cache, GiB(10)) {}

  static BufferCacheConfig CacheConfig() {
    BufferCacheConfig config;
    config.capacity = GiB(1);
    return config;
  }
};

TEST(LocalFsTest, CreateAppendReadDelete) {
  FsFixture f;
  auto id = f.fs.Create("spill0");
  ASSERT_TRUE(id.ok());
  Status out;
  auto run = [](LocalFs* fs, uint64_t file, Status* result) -> sim::Task<> {
    Status s = co_await fs->Append(file, MiB(5));
    if (!s.ok()) {
      *result = s;
      co_return;
    }
    *result = co_await fs->Read(file, 0, MiB(5));
  };
  f.engine.Spawn(run(&f.fs, *id, &out));
  f.engine.Run();
  EXPECT_TRUE(out.ok()) << out.ToString();
  EXPECT_EQ(*f.fs.Size(*id), MiB(5));
  EXPECT_EQ(f.fs.used(), MiB(5));
  EXPECT_TRUE(f.fs.Delete(*id).ok());
  EXPECT_EQ(f.fs.used(), 0u);
  EXPECT_EQ(f.cache.cached_bytes(), 0u);
}

TEST(LocalFsTest, DuplicateNameRejected) {
  FsFixture f;
  ASSERT_TRUE(f.fs.Create("x").ok());
  EXPECT_EQ(f.fs.Create("x").status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(LocalFsTest, ReadPastEofFails) {
  FsFixture f;
  auto id = f.fs.Create("f");
  Status out;
  auto run = [](LocalFs* fs, uint64_t file, Status* result) -> sim::Task<> {
    (void)co_await fs->Append(file, MiB(1));
    *result = co_await fs->Read(file, MiB(1) - 10, 20);
  };
  f.engine.Spawn(run(&f.fs, *id, &out));
  f.engine.Run();
  EXPECT_EQ(out.code(), StatusCode::kOutOfRange);
}

TEST(LocalFsTest, CapacityEnforced) {
  FsFixture f;
  auto id = f.fs.Create("big");
  Status out;
  auto run = [](LocalFs* fs, uint64_t file, Status* result) -> sim::Task<> {
    *result = co_await fs->Append(file, GiB(11));
  };
  f.engine.Spawn(run(&f.fs, *id, &out));
  f.engine.Run();
  EXPECT_EQ(out.code(), StatusCode::kResourceExhausted);
}

TEST(LocalFsTest, TruncateReservesWithoutIo) {
  FsFixture f;
  auto id = f.fs.Create("dataset");
  ASSERT_TRUE(f.fs.Truncate(*id, GiB(2)).ok());
  EXPECT_EQ(*f.fs.Size(*id), GiB(2));
  EXPECT_EQ(f.fs.used(), GiB(2));
  EXPECT_EQ(f.disk.bytes_written(), 0u);
  EXPECT_EQ(f.fs.Truncate(*id, GiB(1)).code(), StatusCode::kInvalidArgument);
}

TEST(LocalFsTest, MissingFileErrors) {
  FsFixture f;
  Status append_status;
  auto run = [](LocalFs* fs, Status* out) -> sim::Task<> {
    *out = co_await fs->Append(999, 10);
  };
  f.engine.Spawn(run(&f.fs, &append_status));
  f.engine.Run();
  EXPECT_EQ(append_status.code(), StatusCode::kNotFound);
  EXPECT_EQ(f.fs.Delete(999).code(), StatusCode::kNotFound);
  EXPECT_EQ(f.fs.Size(999).status().code(), StatusCode::kNotFound);
}

ClusterConfig SmallCluster() {
  ClusterConfig config;
  config.num_nodes = 4;
  config.nodes_per_rack = 2;
  return config;
}

TEST(ClusterTest, NodesAssignedToRacks) {
  sim::Engine engine;
  Cluster cluster(&engine, SmallCluster());
  EXPECT_EQ(cluster.size(), 4u);
  EXPECT_EQ(cluster.node(0).rack(), 0u);
  EXPECT_EQ(cluster.node(1).rack(), 0u);
  EXPECT_EQ(cluster.node(2).rack(), 1u);
  EXPECT_EQ(cluster.node(3).rack(), 1u);
  EXPECT_TRUE(cluster.SameRack(0, 1));
  EXPECT_FALSE(cluster.SameRack(1, 2));
  EXPECT_EQ(cluster.RackPeers(0), (std::vector<size_t>{0, 1}));
}

TEST(ClusterTest, CacheCapacityDerivedFromMemorySplit) {
  sim::Engine engine;
  ClusterConfig config = SmallCluster();
  config.node.physical_memory = GiB(16);
  config.node.map_slots = 2;
  config.node.reduce_slots = 1;
  config.node.heap_per_slot = GiB(1);
  config.node.sponge_memory = GiB(1);
  config.node.os_reserved = MiB(512);
  Cluster cluster(&engine, config);
  // 16 - 3x1 - 1 - 0.5 = 11.5 GB.
  EXPECT_EQ(cluster.node(0).cache_capacity(), GiB(16) - GiB(4) - MiB(512));
}

TEST(ClusterTest, PinnedMemoryShrinksCache) {
  sim::Engine engine;
  ClusterConfig config = SmallCluster();
  config.node.physical_memory = GiB(16);
  config.node.pinned_memory = GiB(12);
  Cluster cluster(&engine, config);
  EXPECT_LT(cluster.node(0).cache_capacity(), GiB(1));
}

TEST(DfsTest, CreateAndReadCharged) {
  sim::Engine engine;
  Cluster cluster(&engine, SmallCluster());
  Dfs dfs(&cluster);
  ASSERT_TRUE(dfs.CreateFile("input", MiB(600)).ok());
  EXPECT_EQ(*dfs.Size("input"), MiB(600));
  Status out;
  auto run = [](Dfs* fs, Status* result) -> sim::Task<> {
    *result = co_await fs->Read("input", 0, 0, MiB(300));
  };
  engine.Spawn(run(&dfs, &out));
  engine.Run();
  EXPECT_TRUE(out.ok()) << out.ToString();
  EXPECT_GT(engine.now(), 0);
}

TEST(DfsTest, BlocksSpreadAcrossNodes) {
  sim::Engine engine;
  Cluster cluster(&engine, SmallCluster());
  Dfs dfs(&cluster);
  ASSERT_TRUE(dfs.CreateFile("spread", 4 * Dfs::kBlockSize).ok());
  std::set<size_t> owners;
  for (uint64_t b = 0; b < 4; ++b) {
    owners.insert(*dfs.BlockLocation("spread", b * Dfs::kBlockSize));
  }
  EXPECT_EQ(owners.size(), 4u);
}

TEST(DfsTest, AppendBlockWritesLocallyFirst) {
  sim::Engine engine;
  Cluster cluster(&engine, SmallCluster());
  Dfs dfs(&cluster);
  Status out;
  auto run = [](Dfs* fs, Status* result) -> sim::Task<> {
    *result = co_await fs->AppendBlock("spill", 2, MiB(64));
  };
  engine.Spawn(run(&dfs, &out));
  engine.Run();
  EXPECT_TRUE(out.ok());
  EXPECT_EQ(*dfs.BlockLocation("spill", 0), 2u);
  EXPECT_EQ(cluster.network().bytes_transferred(), 0u);
}

TEST(DfsTest, DeleteFreesSpace) {
  sim::Engine engine;
  Cluster cluster(&engine, SmallCluster());
  Dfs dfs(&cluster);
  ASSERT_TRUE(dfs.CreateFile("tmp", MiB(256)).ok());
  uint64_t used = 0;
  for (size_t i = 0; i < cluster.size(); ++i) used += cluster.node(i).fs().used();
  EXPECT_EQ(used, MiB(256));
  ASSERT_TRUE(dfs.Delete("tmp").ok());
  used = 0;
  for (size_t i = 0; i < cluster.size(); ++i) used += cluster.node(i).fs().used();
  EXPECT_EQ(used, 0u);
  EXPECT_FALSE(dfs.Exists("tmp"));
}

TEST(DfsTest, RemoteReadUsesNetwork) {
  sim::Engine engine;
  Cluster cluster(&engine, SmallCluster());
  Dfs dfs(&cluster);
  ASSERT_TRUE(dfs.CreateFile("data", Dfs::kBlockSize).ok());
  size_t owner = *dfs.BlockLocation("data", 0);
  size_t reader = (owner + 1) % cluster.size();
  Status out;
  auto run = [](Dfs* fs, size_t node, Status* result) -> sim::Task<> {
    *result = co_await fs->Read("data", node, 0, MiB(10));
  };
  engine.Spawn(run(&dfs, reader, &out));
  engine.Run();
  EXPECT_TRUE(out.ok());
  EXPECT_EQ(cluster.network().bytes_transferred(), MiB(10));
}

}  // namespace
}  // namespace spongefiles::cluster
