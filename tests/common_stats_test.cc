#include "common/stats.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/random.h"
#include "common/table.h"
#include "common/units.h"

namespace spongefiles {
namespace {

TEST(StatsTest, MeanAndVariance) {
  std::vector<double> xs = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(Mean(xs), 3.0);
  EXPECT_DOUBLE_EQ(Variance(xs), 2.0);
  EXPECT_NEAR(StdDev(xs), 1.4142, 1e-3);
}

TEST(StatsTest, EmptyInputsAreZero) {
  std::vector<double> xs;
  EXPECT_EQ(Mean(xs), 0);
  EXPECT_EQ(Variance(xs), 0);
  EXPECT_EQ(UnbiasedSkewness(xs), 0);
}

TEST(StatsTest, SymmetricDataHasZeroSkewness) {
  std::vector<double> xs = {1, 2, 3, 4, 5};
  EXPECT_NEAR(UnbiasedSkewness(xs), 0.0, 1e-12);
}

TEST(StatsTest, RightTailPositiveSkewness) {
  // Heavy right tail: one giant value among small ones (the reduce-input
  // pattern in Figure 1(b)).
  std::vector<double> xs = {1, 1, 1, 1, 1, 1, 1, 1, 1, 100};
  EXPECT_GT(UnbiasedSkewness(xs), 1.0);
}

TEST(StatsTest, LeftTailNegativeSkewness) {
  std::vector<double> xs = {-100, 1, 1, 1, 1, 1, 1, 1, 1, 1};
  EXPECT_LT(UnbiasedSkewness(xs), -1.0);
}

TEST(StatsTest, SkewnessMatchesKnownValue) {
  // Computed against scipy.stats.skew(..., bias=False) for this sample.
  std::vector<double> xs = {2, 8, 0, 4, 1, 9, 9, 0};
  EXPECT_NEAR(UnbiasedSkewness(xs), 0.33058218040797466, 1e-9);
}

TEST(StatsTest, ConstantDataHasZeroSkewness) {
  std::vector<double> xs(10, 3.5);
  EXPECT_EQ(UnbiasedSkewness(xs), 0.0);
}

TEST(StatsTest, QuantileInterpolates) {
  std::vector<double> xs = {10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.0), 10);
  EXPECT_DOUBLE_EQ(Quantile(xs, 1.0), 40);
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.5), 25);
}

TEST(StatsTest, QuantileUnsortedInput) {
  std::vector<double> xs = {40, 10, 30, 20};
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.5), 25);
}

TEST(StatsTest, EmpiricalCdfEndsAtOne) {
  Rng rng(3);
  std::vector<double> xs;
  for (int i = 0; i < 1000; ++i) xs.push_back(rng.NextDouble());
  auto cdf = EmpiricalCdf(xs, 32);
  ASSERT_FALSE(cdf.empty());
  EXPECT_LE(cdf.size(), 32u);
  EXPECT_DOUBLE_EQ(cdf.back().fraction, 1.0);
  for (size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i].value, cdf[i - 1].value);
    EXPECT_GE(cdf[i].fraction, cdf[i - 1].fraction);
  }
}

TEST(StatsTest, EmpiricalCdfUniformIsLinear) {
  Rng rng(5);
  std::vector<double> xs;
  for (int i = 0; i < 100000; ++i) xs.push_back(rng.NextDouble());
  auto cdf = EmpiricalCdf(xs, 11);
  for (const auto& p : cdf) {
    EXPECT_NEAR(p.fraction, p.value, 0.02);
  }
}

TEST(UnitsTest, ByteFormatting) {
  EXPECT_EQ(FormatBytes(512), "512 B");
  EXPECT_EQ(FormatBytes(MiB(10)), "10.0 MB");
  EXPECT_EQ(FormatBytes(GiB(10) + MiB(300)), "10.3 GB");
}

TEST(UnitsTest, DurationFormatting) {
  EXPECT_EQ(FormatDuration(Millis(174)), "174.00 ms");
  EXPECT_EQ(FormatDuration(Seconds(1.25)), "1.25 s");
  EXPECT_EQ(FormatDuration(Micros(42)), "42 us");
}

TEST(UnitsTest, TransferTime) {
  // 1 MB at 1 MB/s is one second.
  EXPECT_EQ(TransferTime(MiB(1), static_cast<double>(MiB(1))), kSecond);
  EXPECT_EQ(TransferTime(0, 100.0), 0);
  // Tiny transfers round up to 1 us.
  EXPECT_EQ(TransferTime(1, 1e12), 1);
}

TEST(TableTest, RendersAlignedColumns) {
  AsciiTable table({"medium", "ms"});
  table.AddRow({"local shared memory", "1"});
  table.AddRow({"disk", "25"});
  std::string out = table.ToString();
  EXPECT_NE(out.find("| medium"), std::string::npos);
  EXPECT_NE(out.find("| local shared memory | 1"), std::string::npos);
  EXPECT_NE(out.find("+--"), std::string::npos);
}

TEST(TableTest, StrFormatFormats) {
  EXPECT_EQ(StrFormat("%d ms", 174), "174 ms");
  EXPECT_EQ(StrFormat("%.1f%%", 85.04), "85.0%");
}

}  // namespace
}  // namespace spongefiles
