// Tests for the extensions beyond the paper's prototype: encrypted chunks
// and quota enforcement with corrective reclamation (both sketched in the
// paper's section 3.1.4 and left as future work there).

#include <gtest/gtest.h>

#include <memory>

#include "cluster/cluster.h"
#include "cluster/dfs.h"
#include "common/checksum.h"
#include "common/random.h"
#include "common/units.h"
#include "sim/engine.h"
#include "sponge/sponge_env.h"
#include "sponge/sponge_file.h"

namespace spongefiles::sponge {
namespace {

struct ExtFixture {
  sim::Engine engine;
  std::unique_ptr<cluster::Cluster> cluster_;
  std::unique_ptr<cluster::Dfs> dfs;
  std::unique_ptr<SpongeEnv> env;

  explicit ExtFixture(SpongeConfig config = {},
                      SpongeServerConfig server_config = {}) {
    cluster::ClusterConfig cc;
    cc.num_nodes = 3;
    cc.node.sponge_memory = MiB(8);
    cluster_ = std::make_unique<cluster::Cluster>(&engine, cc);
    dfs = std::make_unique<cluster::Dfs>(cluster_.get());
    env = std::make_unique<SpongeEnv>(cluster_.get(), dfs.get(), config,
                                      ChunkPoolConfig{}, server_config);
    auto prime = [](MemoryTracker* t) -> sim::Task<> {
      co_await t->PollOnce();
    };
    engine.Spawn(prime(&env->tracker()));
    engine.Run();
  }
};

std::string PatternData(size_t n) {
  std::string out(n, '\0');
  for (size_t i = 0; i < n; ++i) out[i] = static_cast<char>(i * 37 % 251);
  return out;
}

TEST(EncryptionTest, RoundTripPreservesPlaintext) {
  SpongeConfig config;
  config.encrypt = true;
  config.encryption_passphrase = "rack-secret";
  ExtFixture f(config);
  TaskContext task = f.env->StartTask(0);
  SpongeFile file(f.env.get(), &task, "enc");
  std::string data = PatternData(3 * MiB(1) + 999);
  Status status;
  uint64_t digest = 0;
  auto run = [&]() -> sim::Task<> {
    status = co_await file.AppendBytes(Slice(data));
    if (!status.ok()) co_return;
    status = co_await file.Close();
    if (!status.ok()) co_return;
    Checksum sum;
    while (true) {
      auto chunk = co_await file.ReadNext();
      if (!chunk.ok()) {
        status = chunk.status();
        co_return;
      }
      if (chunk->empty()) break;
      auto bytes = chunk->ToBytes();
      sum.Update(Slice(bytes));
    }
    digest = sum.digest();
    co_await file.Delete();
  };
  f.engine.Spawn(run());
  f.engine.Run();
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(digest, Checksum::Of(Slice(data)));
}

TEST(EncryptionTest, PoolHoldsCiphertextNotPlaintext) {
  SpongeConfig config;
  config.encrypt = true;
  ExtFixture f(config);
  TaskContext task = f.env->StartTask(0);
  SpongeFile file(f.env.get(), &task, "snoop");
  std::string data = PatternData(MiB(1));
  auto run = [&]() -> sim::Task<> {
    (void)co_await file.AppendBytes(Slice(data));
    (void)co_await file.Close();
  };
  f.engine.Spawn(run());
  f.engine.Run();
  // A snooping neighbor reads the raw pool slot: must not see plaintext.
  auto chunks = f.env->server(0).pool().AllocatedChunks();
  ASSERT_FALSE(chunks.empty());
  ByteRuns* raw = f.env->server(0).pool().chunk_data(chunks[0].first);
  ASSERT_NE(raw, nullptr);
  auto stored = raw->ToBytes();
  EXPECT_EQ(stored.size(), MiB(1));
  EXPECT_NE(std::string(stored.begin(), stored.end()),
            data.substr(0, stored.size()));
}

TEST(EncryptionTest, CostsCipherTime) {
  auto time_with = [](bool encrypt) {
    SpongeConfig config;
    config.encrypt = encrypt;
    config.async_write = false;
    ExtFixture f(config);
    TaskContext task = f.env->StartTask(0);
    SpongeFile file(f.env.get(), &task, "cost");
    auto run = [&]() -> sim::Task<> {
      ByteRuns data;
      data.AppendZeros(MiB(4));
      (void)co_await file.Append(std::move(data));
      (void)co_await file.Close();
    };
    f.engine.Spawn(run());
    f.engine.Run();
    return f.engine.now();
  };
  EXPECT_GT(time_with(true), time_with(false));
}

TEST(QuotaEnforcementTest, SweepReclaimsExcessChunks) {
  SpongeServerConfig server_config;
  server_config.quota_chunks_per_task = 3;
  ExtFixture f(SpongeConfig{}, server_config);
  // A task sneaks past the allocation-time check by allocating directly
  // from the pool (a buggy/hostile client).
  TaskContext task = f.env->StartTask(1);
  ChunkOwner owner{task.task_id, 1};
  for (int i = 0; i < 7; ++i) {
    ASSERT_TRUE(f.env->server(1).pool().Allocate(owner).ok());
  }
  uint64_t reclaimed = f.env->server(1).EnforceQuotas();
  EXPECT_EQ(reclaimed, 4u);
  EXPECT_EQ(f.env->server(1).pool().AllocatedChunks().size(), 3u);
}

TEST(QuotaEnforcementTest, DisabledQuotaIsNoop) {
  ExtFixture f;
  TaskContext task = f.env->StartTask(0);
  ChunkOwner owner{task.task_id, 0};
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(f.env->server(0).pool().Allocate(owner).ok());
  }
  EXPECT_EQ(f.env->server(0).EnforceQuotas(), 0u);
  EXPECT_EQ(f.env->server(0).pool().AllocatedChunks().size(), 5u);
}

TEST(QuotaEnforcementTest, VictimTaskObservesLossOnRead) {
  SpongeConfig config;
  config.allow_remote_memory = false;  // keep everything on node 0
  ExtFixture f(config);
  TaskContext task = f.env->StartTask(0);
  SpongeFile file(f.env.get(), &task, "victim");
  Status read_status;
  auto run = [&]() -> sim::Task<> {
    ByteRuns data;
    data.AppendZeros(MiB(4));
    (void)co_await file.Append(std::move(data));
    (void)co_await file.Close();
    // An operator tightens the quota; the server's corrective sweep
    // reclaims the task's excess chunks out from under it.
    f.env->server(0).set_quota_chunks_per_task(2);
    EXPECT_EQ(f.env->server(0).EnforceQuotas(), 2u);
    while (true) {
      auto chunk = co_await file.ReadNext();
      if (!chunk.ok()) {
        read_status = chunk.status();
        break;
      }
      if (chunk->empty()) break;
    }
  };
  f.engine.Spawn(run());
  f.engine.Run();
  // A chunk is gone; the task fails and the framework would restart it.
  EXPECT_EQ(read_status.code(), StatusCode::kUnavailable);
}

}  // namespace
}  // namespace spongefiles::sponge
