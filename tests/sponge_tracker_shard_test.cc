// Sharded-tracker coverage: one shard per rack, gossip-fed cross-rack
// visibility. The contracts under test: a shard outage blinds only its own
// rack (other racks keep remote-memory spilling), stale digests age out of
// merged answers instead of attracting doomed allocations, a gossip
// partition degrades only the cross-rack rung and heals after reconnect
// with zero leaked chunks, and chaos schedules with shard faults stay
// deterministic per seed.

#include "sponge/memory_tracker.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "cluster/cluster.h"
#include "cluster/dfs.h"
#include "common/units.h"
#include "sim/engine.h"
#include "sponge/failure.h"
#include "sponge/sponge_env.h"
#include "sponge/sponge_file.h"

namespace spongefiles::sponge {
namespace {

// A multi-rack cluster with small sponge pools (4 one-MB chunks per node).
struct RackFixture {
  sim::Engine engine;
  std::unique_ptr<cluster::Cluster> cluster_;
  std::unique_ptr<cluster::Dfs> dfs;
  std::unique_ptr<SpongeEnv> env;

  explicit RackFixture(size_t num_nodes, size_t nodes_per_rack,
                       SpongeConfig config = {},
                       MemoryTrackerConfig tracker_config = {}) {
    cluster::ClusterConfig cc;
    cc.num_nodes = num_nodes;
    cc.nodes_per_rack = nodes_per_rack;
    cc.node.sponge_memory = MiB(4);
    cluster_ = std::make_unique<cluster::Cluster>(&engine, cc);
    dfs = std::make_unique<cluster::Dfs>(cluster_.get());
    env = std::make_unique<SpongeEnv>(cluster_.get(), dfs.get(), config,
                                      ChunkPoolConfig{}, SpongeServerConfig{},
                                      tracker_config);
    // Prime every shard's free list and run one gossip exchange.
    auto prime = [](MemoryTracker* tracker) -> sim::Task<> {
      co_await tracker->PollOnce();
    };
    engine.Spawn(prime(&env->tracker()));
    engine.Run();
  }

  Result<std::vector<FreeSpaceEntry>> QueryFrom(size_t node) {
    Result<std::vector<FreeSpaceEntry>> out = std::vector<FreeSpaceEntry>{};
    auto run = [](SpongeEnv* e, size_t from,
                  Result<std::vector<FreeSpaceEntry>>* result) -> sim::Task<> {
      *result = co_await e->tracker().Query(from);
    };
    engine.Spawn(run(env.get(), node, &out));
    engine.RunUntil(engine.now() + Seconds(1));
    return out;
  }

  // Spills 12 MiB through `file`'s cascade and closes it. Advances the
  // clock only as far as the spill needs, so gossiped digests do not age
  // out under tests that expect them fresh.
  SpongeFile::Stats Spill(SpongeFile* file) {
    bool done = false;
    auto run = [](SpongeFile* f, bool* finished) -> sim::Task<> {
      ByteRuns data;
      data.AppendZeros(MiB(12));
      (void)co_await f->Append(std::move(data));
      (void)co_await f->Close();
      *finished = true;
    };
    engine.Spawn(run(file, &done));
    const SimTime deadline = engine.now() + Minutes(10);
    while (!done && engine.now() < deadline) {
      engine.RunUntil(engine.now() + Seconds(1));
    }
    return file->stats();
  }

  uint64_t AllocatedChunksTotal() {
    uint64_t total = 0;
    for (size_t n = 0; n < cluster_->size(); ++n) {
      total += env->server(n).pool().AllocatedChunks().size();
    }
    return total;
  }
};

bool HasEntryOnRack(const std::vector<FreeSpaceEntry>& list, size_t rack) {
  for (const FreeSpaceEntry& entry : list) {
    if (entry.rack == rack) return true;
  }
  return false;
}

TEST(TrackerShardTest, ShardsHomeOnLowestNodeOfEachRack) {
  RackFixture f(/*num_nodes=*/6, /*nodes_per_rack=*/2);
  ASSERT_EQ(f.env->tracker().num_shards(), 3u);
  EXPECT_EQ(f.env->tracker().shard(0).home_node(), 0u);
  EXPECT_EQ(f.env->tracker().shard(1).home_node(), 2u);
  EXPECT_EQ(f.env->tracker().shard(2).home_node(), 4u);
}

TEST(TrackerShardTest, MergedViewCoversAllRacksAfterGossip) {
  RackFixture f(/*num_nodes=*/6, /*nodes_per_rack=*/2);
  auto list = f.QueryFrom(3);
  ASSERT_TRUE(list.ok());
  EXPECT_TRUE(HasEntryOnRack(*list, 0));
  EXPECT_TRUE(HasEntryOnRack(*list, 1));
  EXPECT_TRUE(HasEntryOnRack(*list, 2));
  // Sorted most-free-first regardless of which rack an entry came from.
  for (size_t i = 1; i < list->size(); ++i) {
    EXPECT_GE((*list)[i - 1].free_bytes, (*list)[i].free_bytes);
  }
}

TEST(TrackerShardTest, ShardOutageFailsOnlyItsOwnRacksQueries) {
  RackFixture f(/*num_nodes=*/6, /*nodes_per_rack=*/2);
  f.env->tracker().SetShardDown(0, true);
  auto blinded = f.QueryFrom(1);
  EXPECT_FALSE(blinded.ok());
  auto sighted = f.QueryFrom(2);
  ASSERT_TRUE(sighted.ok());
  EXPECT_TRUE(HasEntryOnRack(*sighted, 1));
  EXPECT_TRUE(HasEntryOnRack(*sighted, 2));
}

TEST(TrackerShardTest, ShardOutageDegradesOnlyItsRacksSpills) {
  SpongeConfig config;
  config.allow_cross_rack = true;
  RackFixture f(/*num_nodes=*/6, /*nodes_per_rack=*/2, config);
  f.env->tracker().SetShardDown(0, true);

  // A task on the blinded rack: 12 MiB = 4 local chunks, then the tracker
  // query fails and everything else falls to disk.
  TaskContext blinded_task = f.env->StartTask(0);
  SpongeFile blinded(f.env.get(), &blinded_task, "blinded");
  SpongeFile::Stats down = f.Spill(&blinded);
  EXPECT_EQ(down.chunks_local_memory, 4u);
  EXPECT_EQ(down.chunks_remote_memory, 0u);
  EXPECT_EQ(down.chunks_local_disk, 8u);

  // A task on a healthy rack keeps the full cascade: local, rack-local
  // remote, then cross-rack remote into the third rack.
  TaskContext healthy_task = f.env->StartTask(2);
  SpongeFile healthy(f.env.get(), &healthy_task, "healthy");
  SpongeFile::Stats up = f.Spill(&healthy);
  EXPECT_EQ(up.chunks_local_memory, 4u);
  EXPECT_GE(up.chunks_remote_memory, 8u);
  EXPECT_GT(up.chunks_remote_cross_rack, 0u);
  EXPECT_EQ(up.chunks_local_disk, 0u);
}

TEST(TrackerShardTest, DeadShardsDigestAgesOutOfOtherRacksAnswers) {
  MemoryTrackerConfig tracker_config;
  tracker_config.poll_period = Seconds(1);
  tracker_config.gossip_period = Seconds(1);
  tracker_config.max_digest_age = Seconds(3);
  RackFixture f(/*num_nodes=*/6, /*nodes_per_rack=*/2, SpongeConfig{},
                tracker_config);
  f.env->tracker().Start();
  f.engine.RunUntil(f.engine.now() + Seconds(2));

  f.env->tracker().SetShardDown(0, true);
  auto still_fresh = f.QueryFrom(2);
  ASSERT_TRUE(still_fresh.ok());
  EXPECT_TRUE(HasEntryOnRack(*still_fresh, 0));

  // Past the staleness bound the dead rack vanishes from merged answers;
  // the healthy racks keep seeing each other (their digests stay fresh).
  f.engine.RunUntil(f.engine.now() + Seconds(6));
  auto aged = f.QueryFrom(2);
  ASSERT_TRUE(aged.ok());
  EXPECT_FALSE(HasEntryOnRack(*aged, 0));
  EXPECT_TRUE(HasEntryOnRack(*aged, 1));
  EXPECT_TRUE(HasEntryOnRack(*aged, 2));

  f.env->StopServices();
  f.engine.Run();
}

TEST(TrackerShardTest, GossipPartitionHealsAndLeaksNothing) {
  MemoryTrackerConfig tracker_config;
  tracker_config.poll_period = Seconds(1);
  tracker_config.gossip_period = Seconds(1);
  tracker_config.max_digest_age = Seconds(3);
  SpongeConfig config;
  config.allow_cross_rack = true;
  RackFixture f(/*num_nodes=*/4, /*nodes_per_rack=*/2, config,
                tracker_config);
  f.env->tracker().Start();
  f.engine.RunUntil(f.engine.now() + Seconds(2));

  // Partition rack 0's shard and let both sides' digests of each other
  // age out: cross-rack visibility is gone in both directions, but each
  // rack still answers from its own fresh polls.
  f.env->tracker().SetGossipPartitioned(0, true);
  f.engine.RunUntil(f.engine.now() + Seconds(6));
  auto rack0_view = f.QueryFrom(0);
  ASSERT_TRUE(rack0_view.ok());
  EXPECT_TRUE(HasEntryOnRack(*rack0_view, 0));
  EXPECT_FALSE(HasEntryOnRack(*rack0_view, 1));
  auto rack1_view = f.QueryFrom(2);
  ASSERT_TRUE(rack1_view.ok());
  EXPECT_FALSE(HasEntryOnRack(*rack1_view, 0));

  // A spill during the partition loses only the cross-rack rung: local,
  // then rack-local remote, then disk (no off-rack candidates visible).
  TaskContext partitioned_task = f.env->StartTask(0);
  SpongeFile partitioned(f.env.get(), &partitioned_task, "partitioned");
  SpongeFile::Stats during = f.Spill(&partitioned);
  EXPECT_EQ(during.chunks_remote_cross_rack, 0u);
  EXPECT_EQ(during.chunks_local_disk, 4u);

  // Heal. Reconnected gossip repopulates both directions within a couple
  // of rounds.
  f.env->tracker().SetGossipPartitioned(0, false);
  f.engine.RunUntil(f.engine.now() + Seconds(3));
  auto healed = f.QueryFrom(0);
  ASSERT_TRUE(healed.ok());
  EXPECT_TRUE(HasEntryOnRack(*healed, 1));

  // Deleting the partition-era file releases every chunk it placed — the
  // partition must not have leaked anything.
  auto cleanup = [](SpongeFile* file) -> sim::Task<> {
    co_await file->Delete();
  };
  f.engine.Spawn(cleanup(&partitioned));
  f.engine.RunUntil(f.engine.now() + Seconds(10));
  EXPECT_EQ(f.AllocatedChunksTotal(), 0u);

  f.env->StopServices();
  f.engine.Run();
}

TEST(TrackerShardTest, ChaosScheduleWithShardFaultsIsSeedDeterministic) {
  RackFixture a(/*num_nodes=*/6, /*nodes_per_rack=*/2);
  RackFixture b(/*num_nodes=*/6, /*nodes_per_rack=*/2);
  FailureInjector inj_a(a.env.get(), /*seed=*/7);
  FailureInjector inj_b(b.env.get(), /*seed=*/7);
  ChaosOptions options;
  options.start = Seconds(1);
  options.horizon = Seconds(60);
  options.num_faults = 40;
  EXPECT_EQ(inj_a.ScheduleChaos(options), inj_b.ScheduleChaos(options));
  EXPECT_EQ(inj_a.schedule(), inj_b.schedule());
  // With 40 draws over all kinds the shard faults must show up.
  bool saw_shard_fault = false;
  for (const FaultEvent& event : inj_a.schedule()) {
    if (event.kind == FaultKind::kTrackerShardOutage ||
        event.kind == FaultKind::kTrackerShardStale ||
        event.kind == FaultKind::kGossipPartition) {
      saw_shard_fault = true;
      EXPECT_LT(event.node, a.cluster_->num_racks());
    }
  }
  EXPECT_TRUE(saw_shard_fault);
}

}  // namespace
}  // namespace spongefiles::sponge
