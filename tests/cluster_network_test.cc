#include "cluster/network.h"

#include <gtest/gtest.h>

#include "common/units.h"
#include "sim/engine.h"

namespace spongefiles::cluster {
namespace {

NetworkConfig TestNet() {
  NetworkConfig config;
  config.bandwidth = static_cast<double>(MiB(125));
  config.latency = Micros(300);
  config.ipc_bandwidth = static_cast<double>(MiB(160));
  config.ipc_overhead = Micros(400);
  return config;
}

sim::Task<> DoTransfer(Network* net, size_t src, size_t dst,
                       uint64_t bytes) {
  co_await net->Transfer(src, dst, bytes);
}

TEST(NetworkTest, RemoteTransferTimeMatchesBandwidthPlusLatency) {
  sim::Engine engine;
  Network net(&engine, 4, TestNet());
  engine.Spawn(DoTransfer(&net, 0, 1, MiB(1)));
  engine.Run();
  // 1 MB at 125 MB/s = 8 ms plus 0.3 ms latency.
  EXPECT_NEAR(ToMillis(engine.now()), 8.3, 0.2);
}

TEST(NetworkTest, LoopbackUsesIpcPath) {
  sim::Engine engine;
  Network net(&engine, 4, TestNet());
  engine.Spawn(DoTransfer(&net, 2, 2, MiB(1)));
  engine.Run();
  // 1 MB at 160 MB/s = 6.4 ms plus 0.4 ms overhead.
  EXPECT_NEAR(ToMillis(engine.now()), 6.8, 0.2);
}

TEST(NetworkTest, SharedSenderLinkSerializes) {
  sim::Engine engine;
  Network net(&engine, 4, TestNet());
  engine.Spawn(DoTransfer(&net, 0, 1, MiB(1)));
  engine.Spawn(DoTransfer(&net, 0, 2, MiB(1)));
  engine.Run();
  EXPECT_NEAR(ToMillis(engine.now()), 2 * 8.3, 0.4);
}

TEST(NetworkTest, SharedReceiverLinkSerializes) {
  sim::Engine engine;
  Network net(&engine, 4, TestNet());
  engine.Spawn(DoTransfer(&net, 0, 2, MiB(1)));
  engine.Spawn(DoTransfer(&net, 1, 2, MiB(1)));
  engine.Run();
  EXPECT_GE(ToMillis(engine.now()), 2 * 8.0);
}

TEST(NetworkTest, DisjointPairsRunInParallel) {
  sim::Engine engine;
  Network net(&engine, 4, TestNet());
  engine.Spawn(DoTransfer(&net, 0, 1, MiB(1)));
  engine.Spawn(DoTransfer(&net, 2, 3, MiB(1)));
  engine.Run();
  EXPECT_NEAR(ToMillis(engine.now()), 8.3, 0.2);
}

TEST(NetworkTest, OpposingTransfersDoNotDeadlockFullDuplex) {
  sim::Engine engine;
  Network net(&engine, 2, TestNet());
  engine.Spawn(DoTransfer(&net, 0, 1, MiB(1)));
  engine.Spawn(DoTransfer(&net, 1, 0, MiB(1)));
  engine.Run();
  // Full duplex: both complete in one transfer time.
  EXPECT_NEAR(ToMillis(engine.now()), 8.3, 0.2);
}

TEST(NetworkTest, RpcPaysTwoLatencies) {
  sim::Engine engine;
  Network net(&engine, 2, TestNet());
  auto rpc = [](Network* n) -> sim::Task<> {
    co_await n->Rpc(0, 1, 256, 256);
  };
  engine.Spawn(rpc(&net));
  engine.Run();
  EXPECT_GE(engine.now(), 2 * Micros(300));
  EXPECT_LT(engine.now(), Millis(1));
}

TEST(NetworkTest, CrossRackMeteredByUplink) {
  sim::Engine engine;
  NetworkConfig config = TestNet();
  config.cross_rack_bandwidth = config.bandwidth / 4;  // 4:1 oversubscribed
  Network net(&engine, 4, config, {0, 0, 1, 1});
  engine.Spawn(DoTransfer(&net, 0, 2, MiB(1)));
  engine.Run();
  // 1 MB at ~31 MB/s plus latencies: ~32+ ms, far beyond the 8.3 ms
  // in-rack time.
  EXPECT_GT(ToMillis(engine.now()), 30.0);
  EXPECT_EQ(net.cross_rack_bytes(), MiB(1));
}

TEST(NetworkTest, SameRackUnaffectedByCrossRackMetering) {
  sim::Engine engine;
  NetworkConfig config = TestNet();
  config.cross_rack_bandwidth = config.bandwidth / 4;
  Network net(&engine, 4, config, {0, 0, 1, 1});
  engine.Spawn(DoTransfer(&net, 0, 1, MiB(1)));
  engine.Run();
  EXPECT_NEAR(ToMillis(engine.now()), 8.3, 0.2);
  EXPECT_EQ(net.cross_rack_bytes(), 0u);
}

TEST(NetworkTest, SharedUplinkSerializesCrossRackFlows) {
  sim::Engine engine;
  NetworkConfig config = TestNet();
  config.cross_rack_bandwidth = config.bandwidth;  // metered but full rate
  Network net(&engine, 6, config, {0, 0, 0, 1, 1, 1});
  // Two flows out of rack 0 from different nodes share one uplink.
  engine.Spawn(DoTransfer(&net, 0, 3, MiB(1)));
  engine.Spawn(DoTransfer(&net, 1, 4, MiB(1)));
  engine.Run();
  EXPECT_GE(ToMillis(engine.now()), 2 * 8.0);
}

TEST(NetworkTest, OpposingCrossRackFlowsDoNotDeadlock) {
  sim::Engine engine;
  NetworkConfig config = TestNet();
  config.cross_rack_bandwidth = config.bandwidth / 2;
  Network net(&engine, 4, config, {0, 0, 1, 1});
  engine.Spawn(DoTransfer(&net, 0, 2, MiB(1)));
  engine.Spawn(DoTransfer(&net, 2, 0, MiB(1)));
  engine.Spawn(DoTransfer(&net, 1, 3, MiB(1)));
  engine.Spawn(DoTransfer(&net, 3, 1, MiB(1)));
  uint64_t events = engine.Run();
  EXPECT_GT(events, 0u);
  EXPECT_EQ(net.cross_rack_bytes(), 4 * MiB(1));
}

TEST(NetworkTest, TracksBytesTransferred) {
  sim::Engine engine;
  Network net(&engine, 2, TestNet());
  engine.Spawn(DoTransfer(&net, 0, 1, MiB(3)));
  engine.Run();
  EXPECT_EQ(net.bytes_transferred(), MiB(3));
}

}  // namespace
}  // namespace spongefiles::cluster
