#include "sponge/sponge_file.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "cluster/cluster.h"
#include "cluster/dfs.h"
#include "common/checksum.h"
#include "common/random.h"
#include "common/units.h"
#include "sim/engine.h"
#include "sponge/sponge_env.h"

namespace spongefiles::sponge {
namespace {

// A 4-node single-rack cluster with small sponge pools so tests can
// exercise the whole cascade cheaply.
struct SpongeFixture {
  sim::Engine engine;
  std::unique_ptr<cluster::Cluster> cluster_;
  std::unique_ptr<cluster::Dfs> dfs;
  std::unique_ptr<SpongeEnv> env;
  TaskContext task;

  explicit SpongeFixture(SpongeConfig config = {},
                         uint64_t sponge_per_node = MiB(4),
                         size_t num_nodes = 4,
                         size_t nodes_per_rack = 40) {
    cluster::ClusterConfig cc;
    cc.num_nodes = num_nodes;
    cc.nodes_per_rack = nodes_per_rack;
    cc.node.sponge_memory = sponge_per_node;
    cluster_ = std::make_unique<cluster::Cluster>(&engine, cc);
    dfs = std::make_unique<cluster::Dfs>(cluster_.get());
    env = std::make_unique<SpongeEnv>(cluster_.get(), dfs.get(), config);
    task = env->StartTask(0);
    // Prime the tracker's free list once so queries have data.
    auto prime = [](MemoryTracker* tracker) -> sim::Task<> {
      co_await tracker->PollOnce();
    };
    engine.Spawn(prime(&env->tracker()));
    engine.Run();
  }
};

std::string RandomData(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::string out(n, '\0');
  for (auto& c : out) c = static_cast<char>(rng.Uniform(256));
  return out;
}

TEST(SpongeFileTest, WriteReadRoundTripPreservesBytes) {
  SpongeFixture f;
  SpongeFile file(f.env.get(), &f.task, "rt");
  std::string data = RandomData(3 * MiB(1) + 12345, 99);
  Status status;
  uint64_t read_back_checksum = 0;
  uint64_t read_back_bytes = 0;
  auto run = [&]() -> sim::Task<> {
    status = co_await file.AppendBytes(Slice(data));
    if (!status.ok()) co_return;
    status = co_await file.Close();
    if (!status.ok()) co_return;
    Checksum sum;
    while (true) {
      auto chunk = co_await file.ReadNext();
      if (!chunk.ok()) {
        status = chunk.status();
        co_return;
      }
      if (chunk->empty()) break;
      auto bytes = chunk->ToBytes();
      sum.Update(Slice(bytes));
      read_back_bytes += bytes.size();
    }
    read_back_checksum = sum.digest();
    co_await file.Delete();
  };
  f.engine.Spawn(run());
  f.engine.Run();
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(read_back_bytes, data.size());
  EXPECT_EQ(read_back_checksum, Checksum::Of(Slice(data)));
}

TEST(SpongeFileTest, SmallFileUsesLocalMemory) {
  SpongeFixture f;
  SpongeFile file(f.env.get(), &f.task, "small");
  auto run = [&]() -> sim::Task<> {
    ByteRuns data;
    data.AppendZeros(MiB(2));
    (void)co_await file.Append(std::move(data));
    (void)co_await file.Close();
  };
  f.engine.Spawn(run());
  f.engine.Run();
  auto placements = file.ChunkPlacements();
  ASSERT_EQ(placements.size(), 2u);
  for (auto p : placements) EXPECT_EQ(p, ChunkLocation::kLocalMemory);
  EXPECT_EQ(file.stats().chunks_local_memory, 2u);
}

TEST(SpongeFileTest, OverflowSpillsToRemoteMemory) {
  SpongeFixture f;  // 4 MB local pool
  SpongeFile file(f.env.get(), &f.task, "remote");
  auto run = [&]() -> sim::Task<> {
    ByteRuns data;
    data.AppendZeros(MiB(6));
    (void)co_await file.Append(std::move(data));
    (void)co_await file.Close();
  };
  f.engine.Spawn(run());
  f.engine.Run();
  EXPECT_EQ(file.stats().chunks_local_memory, 4u);
  EXPECT_EQ(file.stats().chunks_remote_memory, 2u);
  EXPECT_EQ(file.stats().chunks_local_disk, 0u);
}

TEST(SpongeFileTest, FullRackFallsBackToDiskThenDfs) {
  // Tiny pools everywhere; disk nearly full so DFS gets the tail.
  SpongeConfig config;
  SpongeFixture f(config, MiB(1));
  // Fill every node's pool.
  for (size_t n = 0; n < 4; ++n) {
    (void)f.env->server(n).pool().Allocate(ChunkOwner{999, n});
  }
  // Leave only 2 MB of local disk.
  auto hog = f.cluster_->node(0).fs().Create("hog");
  ASSERT_TRUE(
      f.cluster_->node(0)
          .fs()
          .Truncate(*hog, f.cluster_->node(0).fs().capacity() - MiB(2))
          .ok());
  SpongeFile file(f.env.get(), &f.task, "cascade");
  Status status;
  auto run = [&]() -> sim::Task<> {
    ByteRuns data;
    data.AppendZeros(MiB(5));
    status = co_await file.Append(std::move(data));
    if (status.ok()) status = co_await file.Close();
  };
  f.engine.Spawn(run());
  f.engine.Run();
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(file.stats().chunks_local_memory, 0u);
  EXPECT_EQ(file.stats().chunks_remote_memory, 0u);
  EXPECT_EQ(file.stats().chunks_local_disk, 2u);
  EXPECT_EQ(file.stats().chunks_dfs, 3u);
}

TEST(SpongeFileTest, ConsecutiveDiskChunksCoalesceIntoOneFile) {
  SpongeConfig config;
  config.allow_remote_memory = false;
  SpongeFixture f(config, 0);  // no sponge memory at all
  SpongeFile file(f.env.get(), &f.task, "disk");
  auto run = [&]() -> sim::Task<> {
    ByteRuns data;
    data.AppendZeros(MiB(5));
    (void)co_await file.Append(std::move(data));
    (void)co_await file.Close();
  };
  f.engine.Spawn(run());
  f.engine.Run();
  EXPECT_EQ(file.stats().chunks_local_disk, 5u);
  EXPECT_EQ(file.stats().disk_files, 1u);
  EXPECT_EQ(f.cluster_->node(0).fs().file_count(), 1u);
}

TEST(SpongeFileTest, MemoryOnlyModeFailsWhenPoolsFull) {
  SpongeConfig config;
  config.memory_only = true;
  SpongeFixture f(config, MiB(1));
  for (size_t n = 0; n < 4; ++n) {
    (void)f.env->server(n).pool().Allocate(ChunkOwner{999, n});
  }
  SpongeFile file(f.env.get(), &f.task, "oom");
  Status status;
  auto run = [&]() -> sim::Task<> {
    ByteRuns data;
    data.AppendZeros(MiB(2));
    status = co_await file.Append(std::move(data));
    if (status.ok()) status = co_await file.Close();
  };
  f.engine.Spawn(run());
  f.engine.Run();
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
}

TEST(SpongeFileTest, AffinityPrefersServersAlreadyHoldingChunks) {
  SpongeFixture f(SpongeConfig{}, MiB(2), /*num_nodes=*/6);
  // Local pool (node 0) has 2 chunks; spill 8 MB so 6 go remote.
  SpongeFile file(f.env.get(), &f.task, "affinity");
  auto run = [&]() -> sim::Task<> {
    ByteRuns data;
    data.AppendZeros(MiB(8));
    (void)co_await file.Append(std::move(data));
    (void)co_await file.Close();
  };
  f.engine.Spawn(run());
  f.engine.Run();
  EXPECT_EQ(file.stats().chunks_remote_memory, 6u);
  // Affinity keeps the remote chunks on as few machines as possible:
  // 6 chunks over 2 MB pools = exactly 3 distinct remote nodes.
  std::set<size_t> remote_nodes;
  size_t total_remote = 0;
  for (size_t n = 1; n < 6; ++n) {
    auto held = f.env->server(n).pool().AllocatedChunks();
    total_remote += held.size();
    if (!held.empty()) remote_nodes.insert(n);
  }
  EXPECT_EQ(total_remote, 6u);
  EXPECT_EQ(remote_nodes.size(), 3u);
}

TEST(SpongeFileTest, RackRestrictionKeepsChunksOnRack) {
  // 4 nodes, 2 racks. Task on node 0 (rack 0); only node 1 shares the rack.
  SpongeConfig config;
  config.allow_cross_rack = false;
  SpongeFixture f(config, MiB(2), /*num_nodes=*/4, /*nodes_per_rack=*/2);
  SpongeFile file(f.env.get(), &f.task, "rack");
  auto run = [&]() -> sim::Task<> {
    ByteRuns data;
    data.AppendZeros(MiB(8));
    (void)co_await file.Append(std::move(data));
    (void)co_await file.Close();
  };
  f.engine.Spawn(run());
  f.engine.Run();
  // 2 local, 2 remote on node 1, rest must go to disk (not off-rack).
  EXPECT_EQ(file.stats().chunks_remote_memory, 2u);
  EXPECT_EQ(file.stats().chunks_local_disk, 4u);
  EXPECT_TRUE(f.env->server(2).pool().AllocatedChunks().empty());
  EXPECT_TRUE(f.env->server(3).pool().AllocatedChunks().empty());
}

TEST(SpongeFileTest, CrossRackAllowedWhenUnrestricted) {
  SpongeConfig config;
  config.allow_cross_rack = true;
  SpongeFixture f(config, MiB(2), /*num_nodes=*/4, /*nodes_per_rack=*/2);
  SpongeFile file(f.env.get(), &f.task, "xrack");
  auto run = [&]() -> sim::Task<> {
    ByteRuns data;
    data.AppendZeros(MiB(8));
    (void)co_await file.Append(std::move(data));
    (void)co_await file.Close();
  };
  f.engine.Spawn(run());
  f.engine.Run();
  EXPECT_EQ(file.stats().chunks_remote_memory, 6u);
  EXPECT_EQ(file.stats().chunks_local_disk, 0u);
}

TEST(SpongeFileTest, StaleFreeListRetriesThenDisk) {
  // The tracker's snapshot says peers have memory, but their pools were
  // filled after the poll. Allocation must bounce off each and fall back
  // to disk without ever failing the spill.
  SpongeFixture f(SpongeConfig{}, MiB(1));
  // Poll happened in the fixture; now fill all pools behind its back.
  for (size_t n = 0; n < 4; ++n) {
    (void)f.env->server(n).pool().Allocate(ChunkOwner{999, n});
  }
  SpongeFile file(f.env.get(), &f.task, "stale");
  Status status;
  auto run = [&]() -> sim::Task<> {
    ByteRuns data;
    data.AppendZeros(MiB(2));
    status = co_await file.Append(std::move(data));
    if (status.ok()) status = co_await file.Close();
  };
  f.engine.Spawn(run());
  f.engine.Run();
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(file.stats().chunks_local_disk, 2u);
  EXPECT_GT(file.stats().stale_list_retries, 0u);
}

TEST(SpongeFileTest, ReadBeforeCloseRejected) {
  SpongeFixture f;
  SpongeFile file(f.env.get(), &f.task, "order");
  Status status;
  auto run = [&]() -> sim::Task<> {
    auto chunk = co_await file.ReadNext();
    status = chunk.status();
  };
  f.engine.Spawn(run());
  f.engine.Run();
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST(SpongeFileTest, AppendAfterCloseRejected) {
  SpongeFixture f;
  SpongeFile file(f.env.get(), &f.task, "order2");
  Status status;
  auto run = [&]() -> sim::Task<> {
    (void)co_await file.Close();
    ByteRuns data;
    data.AppendZeros(10);
    status = co_await file.Append(std::move(data));
  };
  f.engine.Spawn(run());
  f.engine.Run();
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST(SpongeFileTest, DeleteFreesPoolChunksEverywhere) {
  SpongeFixture f;  // 4 MB pools
  SpongeFile file(f.env.get(), &f.task, "del");
  auto run = [&]() -> sim::Task<> {
    ByteRuns data;
    data.AppendZeros(MiB(6));
    (void)co_await file.Append(std::move(data));
    (void)co_await file.Close();
    co_await file.Delete();
  };
  f.engine.Spawn(run());
  f.engine.Run();
  for (size_t n = 0; n < 4; ++n) {
    EXPECT_TRUE(f.env->server(n).pool().AllocatedChunks().empty())
        << "node " << n;
    EXPECT_EQ(f.env->server(n).free_bytes(), MiB(4));
  }
}

TEST(SpongeFileTest, KilledTaskAborts) {
  SpongeFixture f;
  SpongeFile file(f.env.get(), &f.task, "killed");
  Status status;
  auto run = [&]() -> sim::Task<> {
    f.task.killed = true;
    ByteRuns data;
    data.AppendZeros(MiB(1));
    status = co_await file.Append(std::move(data));
  };
  f.engine.Spawn(run());
  f.engine.Run();
  EXPECT_EQ(status.code(), StatusCode::kAborted);
}

TEST(SpongeFileTest, RemoteNodeCrashLosesChunksReadFails) {
  SpongeFixture f;  // 4 MB pools; 6 MB spill puts 2 chunks remote
  SpongeFile file(f.env.get(), &f.task, "crash");
  Status read_status;
  auto run = [&]() -> sim::Task<> {
    ByteRuns data;
    data.AppendZeros(MiB(6));
    (void)co_await file.Append(std::move(data));
    (void)co_await file.Close();
    // Find the remote node that holds our chunks and crash it.
    for (size_t n = 1; n < 4; ++n) {
      if (!f.env->server(n).pool().AllocatedChunks().empty()) {
        f.env->CrashNode(n);
      }
    }
    while (true) {
      auto chunk = co_await file.ReadNext();
      if (!chunk.ok()) {
        read_status = chunk.status();
        break;
      }
      if (chunk->empty()) break;
    }
  };
  f.engine.Spawn(run());
  f.engine.Run();
  EXPECT_EQ(read_status.code(), StatusCode::kUnavailable);
}

TEST(SpongeFileTest, FragmentationOnlyFromFinalPartialChunk) {
  SpongeFixture f(SpongeConfig{}, MiB(16));
  SpongeFile file(f.env.get(), &f.task, "frag");
  auto run = [&]() -> sim::Task<> {
    ByteRuns data;
    data.AppendZeros(MiB(3) + 700 * kKiB);
    (void)co_await file.Append(std::move(data));
    (void)co_await file.Close();
  };
  f.engine.Spawn(run());
  f.engine.Run();
  // 4 chunks; only the last one (700 KB in a 1 MB slot) wastes memory.
  EXPECT_EQ(file.stats().total_chunks(), 4u);
  EXPECT_EQ(file.stats().fragmentation_bytes, MiB(1) - 700 * kKiB);
  // Well below 1% would need a bigger file; check the ratio bound holds
  // for a 100 MB spill instead.
  double waste = static_cast<double>(file.stats().fragmentation_bytes);
  EXPECT_LT(waste, static_cast<double>(MiB(1)));
}

TEST(SpongeFileTest, PrefetchOverlapsRemoteReads) {
  // Reading N remote chunks with prefetch should take notably less time
  // than without (transfers overlap the consumer's processing).
  auto measure = [](bool prefetch) {
    SpongeConfig config;
    config.prefetch = prefetch;
    SpongeFixture f(config, MiB(2), /*num_nodes=*/6);
    auto file = std::make_unique<SpongeFile>(f.env.get(), &f.task, "pf");
    SimTime read_time = 0;
    auto run = [&f, &file, &read_time]() -> sim::Task<> {
      ByteRuns data;
      data.AppendZeros(MiB(10));
      (void)co_await file->Append(std::move(data));
      (void)co_await file->Close();
      SimTime start = f.engine.now();
      while (true) {
        auto chunk = co_await file->ReadNext();
        if (!chunk.ok() || chunk->empty()) break;
        // Simulate per-chunk processing work.
        co_await f.engine.Delay(Millis(8));
      }
      read_time = f.engine.now() - start;
    };
    f.engine.Spawn(run());
    f.engine.Run();
    return read_time;
  };
  SimTime with_prefetch = measure(true);
  SimTime without_prefetch = measure(false);
  EXPECT_LT(with_prefetch, without_prefetch);
}

TEST(SpongeFileTest, AsyncWriteOverlapsWithComputation) {
  auto measure = [](bool async_write) {
    SpongeConfig config;
    config.async_write = async_write;
    SpongeFixture f(config, MiB(2), /*num_nodes=*/6);
    auto file = std::make_unique<SpongeFile>(f.env.get(), &f.task, "aw");
    SimTime total = 0;
    auto run = [&f, &file, &total]() -> sim::Task<> {
      SimTime start = f.engine.now();
      for (int i = 0; i < 10; ++i) {
        ByteRuns data;
        data.AppendZeros(MiB(1));
        (void)co_await file->Append(std::move(data));
        co_await f.engine.Delay(Millis(8));  // producer computation
      }
      (void)co_await file->Close();
      total = f.engine.now() - start;
    };
    f.engine.Spawn(run());
    f.engine.Run();
    return total;
  };
  EXPECT_LT(measure(true), measure(false));
}

TEST(SpongeFileTest, StatsCountBytes) {
  SpongeFixture f;
  SpongeFile file(f.env.get(), &f.task, "stats");
  auto run = [&]() -> sim::Task<> {
    ByteRuns data;
    data.AppendZeros(MiB(2) + 17);
    (void)co_await file.Append(std::move(data));
    (void)co_await file.Close();
  };
  f.engine.Spawn(run());
  f.engine.Run();
  EXPECT_EQ(file.stats().bytes_written, MiB(2) + 17);
  EXPECT_EQ(file.size(), MiB(2) + 17);
  EXPECT_EQ(file.stats().total_chunks(), 3u);
}

}  // namespace
}  // namespace spongefiles::sponge
