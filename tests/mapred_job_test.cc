#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "cluster/cluster.h"
#include "cluster/dfs.h"
#include "common/units.h"
#include "mapred/job_tracker.h"
#include "sim/engine.h"
#include "sponge/sponge_env.h"

namespace spongefiles::mapred {
namespace {

// A deterministic input: records are pre-assigned to splits and a DFS file
// provides read timing and map placement.
class TestInput : public InputFormat {
 public:
  TestInput(cluster::Dfs* dfs, std::string name,
            std::vector<std::vector<Record>> splits, uint64_t split_bytes)
      : name_(std::move(name)),
        records_(std::move(splits)),
        split_bytes_(split_bytes) {
    auto created =
        dfs->CreateFile(name_, split_bytes_ * records_.size());
    (void)created;
  }

  std::vector<InputSplit> Splits() override {
    std::vector<InputSplit> out;
    for (size_t i = 0; i < records_.size(); ++i) {
      InputSplit split;
      split.dfs_file = name_;
      split.offset = i * split_bytes_;
      split.bytes = split_bytes_;
      const std::vector<Record>* records = &records_[i];
      split.generate = [records]() { return *records; };
      out.push_back(std::move(split));
    }
    return out;
  }

 private:
  std::string name_;
  std::vector<std::vector<Record>> records_;
  uint64_t split_bytes_;
};

// Counts values per key (wordcount).
class CountReducer : public Reducer {
 public:
  sim::Task<Status> StartKey(std::string key) override {
    key_ = key;
    count_ = 0;
    co_return Status::OK();
  }
  sim::Task<Status> AddValue(Record value) override {
    count_ += value.number;
    co_return Status::OK();
  }
  sim::Task<Status> FinishKey() override {
    Record out;
    out.key = key_;
    out.number = count_;
    ctx_->output->push_back(std::move(out));
    co_return Status::OK();
  }

 private:
  std::string key_;
  double count_ = 0;
};

// Fails its first `failures` attempts (retry-path testing).
class FlakyReducer : public CountReducer {
 public:
  explicit FlakyReducer(int* remaining_failures)
      : remaining_failures_(remaining_failures) {}

  sim::Task<Status> Finish() override {
    if (*remaining_failures_ > 0) {
      --*remaining_failures_;
      co_return Internal("injected reducer failure");
    }
    co_return Status::OK();
  }

 private:
  int* remaining_failures_;
};

struct JobFixture {
  sim::Engine engine;
  std::unique_ptr<cluster::Cluster> cluster_;
  std::unique_ptr<cluster::Dfs> dfs;
  std::unique_ptr<sponge::SpongeEnv> env;
  std::unique_ptr<JobTracker> tracker;

  explicit JobFixture(uint64_t heap = GiB(1), uint64_t sponge = MiB(32)) {
    cluster::ClusterConfig cc;
    cc.num_nodes = 4;
    cc.node.sponge_memory = sponge;
    cc.node.heap_per_slot = heap;
    cluster_ = std::make_unique<cluster::Cluster>(&engine, cc);
    dfs = std::make_unique<cluster::Dfs>(cluster_.get());
    env = std::make_unique<sponge::SpongeEnv>(cluster_.get(), dfs.get(),
                                              sponge::SpongeConfig{});
    tracker = std::make_unique<JobTracker>(env.get(), dfs.get());
    auto prime = [](sponge::MemoryTracker* t) -> sim::Task<> {
      co_await t->PollOnce();
    };
    engine.Spawn(prime(&env->tracker()));
    engine.Run();
  }

  Result<JobResult> RunJob(JobConfig config) {
    Result<JobResult> result = JobResult{};
    auto run = [](JobTracker* jt, JobConfig jc,
                  Result<JobResult>* out) -> sim::Task<> {
      *out = co_await jt->Run(std::move(jc));
    };
    engine.Spawn(run(tracker.get(), std::move(config), &result));
    engine.Run();
    return result;
  }
};

std::vector<std::vector<Record>> WordSplits() {
  // 3 splits of words; counts are knowable.
  std::vector<std::vector<Record>> splits(3);
  const char* words[] = {"apple", "banana", "cherry", "apple", "banana",
                         "apple"};
  for (size_t s = 0; s < 3; ++s) {
    for (const char* w : words) {
      Record r;
      r.key = w;
      r.number = 1;
      r.size = 2000;
      splits[s].push_back(std::move(r));
    }
  }
  return splits;
}

TEST(JobTest, WordCountExactCounts) {
  JobFixture f;
  TestInput input(f.dfs.get(), "words", WordSplits(), MiB(16));
  JobConfig config;
  config.name = "wordcount";
  config.input = &input;
  config.num_reducers = 2;
  config.reducer_factory = [] { return std::make_unique<CountReducer>(); };
  auto result = f.RunJob(std::move(config));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  std::map<std::string, double> counts;
  for (const Record& r : result->output) counts[r.key] = r.number;
  EXPECT_EQ(counts["apple"], 9);
  EXPECT_EQ(counts["banana"], 6);
  EXPECT_EQ(counts["cherry"], 3);
  EXPECT_EQ(result->map_tasks.size(), 3u);
  EXPECT_EQ(result->reduce_tasks.size(), 2u);
  EXPECT_GT(result->runtime, 0);
}

TEST(JobTest, MapOnlyJobRuns) {
  JobFixture f;
  TestInput input(f.dfs.get(), "scan", WordSplits(), MiB(16));
  JobConfig config;
  config.name = "grep";
  config.input = &input;
  config.map_fn = [](const Record&, std::vector<Record>*) {};  // no output
  auto result = f.RunJob(std::move(config));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->reduce_tasks.empty());
  for (const auto& stats : result->map_tasks) {
    EXPECT_EQ(stats.input_bytes, MiB(16));
    EXPECT_GT(stats.runtime, 0);
  }
}

TEST(JobTest, MapPlacementFollowsBlockLocality) {
  JobFixture f;
  const uint64_t block = cluster::Dfs::kBlockSize;
  TestInput input(f.dfs.get(), "local", WordSplits(), block);
  JobConfig config;
  config.input = &input;
  config.reducer_factory = [] { return std::make_unique<CountReducer>(); };
  auto result = f.RunJob(std::move(config));
  ASSERT_TRUE(result.ok());
  for (size_t i = 0; i < result->map_tasks.size(); ++i) {
    auto location = f.dfs->BlockLocation("local", i * block);
    ASSERT_TRUE(location.ok());
    EXPECT_EQ(result->map_tasks[i].node, *location);
  }
}

TEST(JobTest, SkewedReduceSpillsWithTinyHeap) {
  // 2 MB heap -> 1.4 MB shuffle buffer; ~12 MB of records on one key must
  // spill. Disk mode: bytes land on the reduce node's local filesystem.
  JobFixture f(/*heap=*/MiB(2));
  std::vector<std::vector<Record>> splits(2);
  for (size_t s = 0; s < 2; ++s) {
    for (int i = 0; i < 600; ++i) {
      Record r;
      r.key = "hot";
      r.number = i;
      r.size = 10000;
      splits[s].push_back(std::move(r));
    }
  }
  TestInput input(f.dfs.get(), "skewed", std::move(splits), MiB(8));
  JobConfig config;
  config.name = "skew";
  config.input = &input;
  config.spill_mode = SpillMode::kDisk;
  config.reducer_factory = [] { return std::make_unique<CountReducer>(); };
  auto result = f.RunJob(std::move(config));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const TaskStats* straggler = result->straggler();
  ASSERT_NE(straggler, nullptr);
  EXPECT_EQ(straggler->input_records, 1200u);
  EXPECT_GT(straggler->spill.bytes_spilled, MiB(10));
  EXPECT_EQ(straggler->spill.sponge_chunks, 0u);
  // Output correct despite spilling.
  ASSERT_EQ(result->output.size(), 1u);
  EXPECT_EQ(result->output[0].number, 2 * (599.0 * 600.0 / 2));
}

TEST(JobTest, SpongeModeUsesSpongeChunks) {
  JobFixture f(/*heap=*/MiB(2), /*sponge=*/MiB(64));
  std::vector<std::vector<Record>> splits(2);
  for (size_t s = 0; s < 2; ++s) {
    for (int i = 0; i < 600; ++i) {
      Record r;
      r.key = "hot";
      r.number = 1;
      r.size = 10000;
      splits[s].push_back(std::move(r));
    }
  }
  TestInput input(f.dfs.get(), "sponge-skew", std::move(splits), MiB(8));
  JobConfig config;
  config.name = "skew-sponge";
  config.input = &input;
  config.spill_mode = SpillMode::kSponge;
  config.reducer_factory = [] { return std::make_unique<CountReducer>(); };
  auto result = f.RunJob(std::move(config));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const TaskStats* straggler = result->straggler();
  EXPECT_GT(straggler->spill.sponge_chunks, 10u);
  ASSERT_EQ(result->output.size(), 1u);
  EXPECT_EQ(result->output[0].number, 1200);
}

TEST(JobTest, DiskModeRespillsInMultiRoundMerge) {
  // With a tiny heap the shuffle produces many runs; the disk merge is
  // capped at io.sort.factor = 10 streams and must re-spill, so total
  // spilled bytes exceed the sponge run of the same job (the Figure 6
  // analysis: 16.1 GB vs 10.3 GB).
  auto spilled_bytes = [](SpillMode mode) {
    JobFixture f(/*heap=*/MiB(1), /*sponge=*/MiB(128));
    // 12 map outputs -> 12 shuffled runs, exceeding io.sort.factor = 10.
    std::vector<std::vector<Record>> splits(12);
    for (size_t s = 0; s < splits.size(); ++s) {
      for (int i = 0; i < 500; ++i) {
        Record r;
        r.key = "hot";
        r.number = 1;
        r.size = 10000;
        splits[s].push_back(std::move(r));
      }
    }
    TestInput input(f.dfs.get(), "respill", std::move(splits), MiB(8));
    JobConfig config;
    config.input = &input;
    config.spill_mode = mode;
    config.reducer_factory = [] { return std::make_unique<CountReducer>(); };
    auto result = f.RunJob(std::move(config));
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return result->straggler()->spill.bytes_spilled;
  };
  uint64_t disk = spilled_bytes(SpillMode::kDisk);
  uint64_t sponge = spilled_bytes(SpillMode::kSponge);
  EXPECT_GT(disk, sponge + sponge / 4);
}

TEST(JobTest, FlakyReduceRetriedToSuccess) {
  JobFixture f;
  TestInput input(f.dfs.get(), "flaky", WordSplits(), MiB(16));
  int failures = 2;
  JobConfig config;
  config.input = &input;
  config.reducer_factory = [&failures] {
    return std::make_unique<FlakyReducer>(&failures);
  };
  auto result = f.RunJob(std::move(config));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->reduce_tasks[0].attempts, 3);
  std::map<std::string, double> counts;
  for (const Record& r : result->output) counts[r.key] = r.number;
  EXPECT_EQ(counts["apple"], 9);
}

TEST(JobTest, FailingJobSurfacesError) {
  JobFixture f;
  TestInput input(f.dfs.get(), "doomed", WordSplits(), MiB(16));
  int failures = 100;  // more than max_attempts
  JobConfig config;
  config.input = &input;
  config.max_attempts = 2;
  config.reducer_factory = [&failures] {
    return std::make_unique<FlakyReducer>(&failures);
  };
  auto result = f.RunJob(std::move(config));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
}

TEST(JobTest, CancelStopsRemainingTasks) {
  JobFixture f;
  auto splits = WordSplits();
  for (int i = 0; i < 20; ++i) splits.push_back(splits[0]);
  TestInput input(f.dfs.get(), "cancellable", std::move(splits), MiB(64));
  JobConfig config;
  config.input = &input;
  config.map_fn = [](const Record&, std::vector<Record>*) {};
  config.cancel = std::make_shared<bool>(false);
  auto cancel = config.cancel;
  auto canceller = [](sim::Engine* engine, std::shared_ptr<bool> flag)
      -> sim::Task<> {
    co_await engine->Delay(Seconds(1));
    *flag = true;
  };
  f.engine.Spawn(canceller(&f.engine, cancel));
  auto result = f.RunJob(std::move(config));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  size_t cancelled = 0;
  for (const auto& stats : result->map_tasks) {
    if (!stats.completed) ++cancelled;
  }
  EXPECT_GT(cancelled, 0u);
}

TEST(JobTest, SlotsLimitConcurrency) {
  // 4 nodes x 2 map slots = 8 concurrent maps; 24 equal splits on a
  // no-work job should take ~3 waves.
  JobFixture f;
  std::vector<std::vector<Record>> splits(24);
  TestInput input(f.dfs.get(), "waves", std::move(splits), MiB(32));
  JobConfig config;
  config.input = &input;
  auto result = f.RunJob(std::move(config));
  ASSERT_TRUE(result.ok());
  // Every node ran at most 2 tasks at a time; total runtime is at least
  // 3x one task's runtime (24 tasks / 8 slots), at most ~2x that bound
  // given scheduling slack.
  Duration one_task = result->map_tasks[0].runtime;
  EXPECT_GE(result->runtime, 3 * one_task - Millis(10));
}

}  // namespace
}  // namespace spongefiles::mapred
