#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <string>

namespace spongefiles::obs {
namespace {

TEST(CounterTest, IncrementsMonotonically) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(GaugeTest, MovesBothWaysAndTracksHighWater) {
  Gauge g;
  g.Add(5);
  g.Add(7);
  g.Sub(10);
  EXPECT_EQ(g.value(), 2);
  EXPECT_EQ(g.max(), 12);
  g.Set(-3);
  EXPECT_EQ(g.value(), -3);
  EXPECT_EQ(g.max(), 12);
}

TEST(HistogramTest, SmallValuesAreExact) {
  Histogram h;
  for (uint64_t v = 0; v < 64; ++v) {
    EXPECT_EQ(Histogram::BucketIndex(v), v);
    EXPECT_EQ(Histogram::BucketLowerBound(Histogram::BucketIndex(v)), v);
  }
  for (uint64_t v : {1ull, 2ull, 3ull, 10ull, 63ull}) h.Record(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 63u);
  EXPECT_EQ(h.Quantile(0.5), 3u);
}

TEST(HistogramTest, BucketBoundsBracketTheValue) {
  for (uint64_t v : {64ull, 100ull, 1000ull, 123456ull, 1ull << 40,
                     (1ull << 40) + 12345ull}) {
    uint32_t index = Histogram::BucketIndex(v);
    EXPECT_LE(Histogram::BucketLowerBound(index), v);
    EXPECT_GT(Histogram::BucketLowerBound(index + 1), v);
  }
}

TEST(HistogramTest, QuantileErrorIsBounded) {
  Histogram h;
  // 1..100000: reconstructed quantiles must be within the log-linear
  // bucketing's ~1.6% relative error.
  for (uint64_t v = 1; v <= 100000; ++v) h.Record(v);
  for (double q : {0.10, 0.50, 0.90, 0.99}) {
    double expected = q * 100000.0;
    double got = static_cast<double>(h.Quantile(q));
    EXPECT_NEAR(got, expected, expected * 0.02) << "q=" << q;
  }
  EXPECT_EQ(h.Quantile(0.0), 1u);
  EXPECT_EQ(h.Quantile(1.0), 100000u);
}

TEST(HistogramTest, SumMeanMinMax) {
  Histogram h;
  h.Record(10);
  h.Record(30);
  EXPECT_EQ(h.sum(), 40u);
  EXPECT_DOUBLE_EQ(h.mean(), 20.0);
  EXPECT_EQ(h.min(), 10u);
  EXPECT_EQ(h.max(), 30u);
}

TEST(SummaryTest, TracksMinMaxMean) {
  Summary acc;
  acc.Add(5);
  acc.Add(-1);
  acc.Add(2);
  EXPECT_EQ(acc.count(), 3u);
  EXPECT_EQ(acc.min(), -1);
  EXPECT_EQ(acc.max(), 5);
  EXPECT_DOUBLE_EQ(acc.mean(), 2.0);
}

TEST(RegistryTest, LookupReturnsStablePointers) {
  Registry registry;
  Counter* a = registry.counter("x.count");
  Counter* b = registry.counter("x.count");
  EXPECT_EQ(a, b);
  Counter* c = registry.counter("x.count", {{"op", "read"}});
  EXPECT_NE(a, c);
  EXPECT_EQ(registry.size(), 2u);
}

TEST(RegistryTest, LabelOrderIsSignificant) {
  Registry registry;
  Counter* ab =
      registry.counter("m", {{"a", "1"}, {"b", "2"}});
  Counter* ba =
      registry.counter("m", {{"b", "2"}, {"a", "1"}});
  EXPECT_NE(ab, ba);
  EXPECT_EQ(registry.CardinalityOf("m"), 2u);
}

TEST(RegistryTest, CardinalityCountsLabelSets) {
  Registry registry;
  registry.counter("spill.bytes", {{"medium", "local-memory"}});
  registry.counter("spill.bytes", {{"medium", "remote-memory"}});
  registry.counter("spill.bytes", {{"medium", "dfs"}});
  registry.counter("other");
  EXPECT_EQ(registry.CardinalityOf("spill.bytes"), 3u);
  EXPECT_EQ(registry.CardinalityOf("other"), 1u);
  EXPECT_EQ(registry.CardinalityOf("missing"), 0u);
}

TEST(RegistryTest, ResetValuesKeepsInstrumentPointers) {
  Registry registry;
  Counter* c = registry.counter("c");
  Gauge* g = registry.gauge("g");
  Histogram* h = registry.histogram("h");
  Summary* s = registry.summary("s");
  c->Increment(7);
  g->Set(9);
  h->Record(5);
  s->Add(1.5);
  registry.ResetValues();
  EXPECT_EQ(registry.counter("c"), c);
  EXPECT_EQ(registry.gauge("g"), g);
  EXPECT_EQ(registry.histogram("h"), h);
  EXPECT_EQ(registry.summary("s"), s);
  EXPECT_EQ(c->value(), 0u);
  EXPECT_EQ(g->value(), 0);
  EXPECT_EQ(g->max(), 0);
  EXPECT_EQ(h->count(), 0u);
  EXPECT_EQ(s->count(), 0u);
}

TEST(RegistryTest, JsonSnapshotRoundTrip) {
  Registry registry;
  registry.counter("sponge.spill.bytes", {{"medium", "local-memory"}})
      ->Increment(12345);
  registry.gauge("pool.used")->Set(17);
  Histogram* h = registry.histogram("disk.queue");
  h->Record(3);
  h->Record(200);
  registry.summary("run.ms")->Add(2.5);

  std::string json = registry.ToJson();
  // Deterministic: serializing twice yields the same bytes.
  EXPECT_EQ(json, registry.ToJson());
  // The snapshot carries every section with names, labels and values.
  EXPECT_NE(json.find("\"counters\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"sponge.spill.bytes\""), std::string::npos);
  EXPECT_NE(json.find("\"labels\":{\"medium\":\"local-memory\"}"),
            std::string::npos);
  EXPECT_NE(json.find("\"value\":12345"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"pool.used\",\"labels\":{},\"value\":17"),
            std::string::npos);
  EXPECT_NE(json.find("\"count\":2"), std::string::npos);
  EXPECT_NE(json.find("\"buckets\":[[3,1],["), std::string::npos);
  EXPECT_NE(json.find("\"summaries\":["), std::string::npos);
  EXPECT_NE(json.find("\"mean\":2.5"), std::string::npos);

  // Round-trip through a file: the bytes on disk equal the snapshot.
  std::string path = ::testing::TempDir() + "/obs_metrics_snapshot.json";
  ASSERT_TRUE(registry.WriteJsonFile(path).ok());
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string read_back;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    read_back.append(buf, n);
  }
  std::fclose(f);
  EXPECT_EQ(read_back, json);
  std::remove(path.c_str());
}

TEST(RegistryTest, DefaultIsProcessWideSingleton) {
  EXPECT_EQ(&Registry::Default(), &Registry::Default());
}

}  // namespace
}  // namespace spongefiles::obs
