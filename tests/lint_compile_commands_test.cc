#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "lint/compile_commands.h"

namespace spongefiles::lint {
namespace {

TEST(CompileCommandsTest, ParsesCommandString) {
  auto db = CompileCommands::Parse(R"json([
    {
      "directory": "/repo/build",
      "command": "/usr/bin/c++ -I/repo/src -isystem /opt/inc -Irel -o x.o -c /repo/src/x.cc",
      "file": "/repo/src/x.cc"
    }
  ])json");
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  ASSERT_EQ(db->entries().size(), 1u);
  const CompileEntry& e = db->entries()[0];
  EXPECT_EQ(e.file, "/repo/src/x.cc");
  EXPECT_EQ(e.directory, "/repo/build");
  EXPECT_EQ(e.include_dirs,
            (std::vector<std::string>{"/repo/src", "/opt/inc",
                                      "/repo/build/rel"}));
}

TEST(CompileCommandsTest, ParsesArgumentsList) {
  auto db = CompileCommands::Parse(R"json([
    {
      "directory": "/b",
      "arguments": ["c++", "-I", "/repo/src", "-c", "y.cc"],
      "file": "y.cc"
    }
  ])json");
  ASSERT_TRUE(db.ok());
  ASSERT_EQ(db->entries().size(), 1u);
  // A relative "file" is resolved against the directory.
  EXPECT_EQ(db->entries()[0].file, "/b/y.cc");
  EXPECT_EQ(db->entries()[0].include_dirs,
            (std::vector<std::string>{"/repo/src"}));
}

TEST(CompileCommandsTest, AllIncludeDirsDeduplicates) {
  auto db = CompileCommands::Parse(R"json([
    {"directory": "/b", "command": "cc -I/repo/src -c a.cc", "file": "a.cc"},
    {"directory": "/b", "command": "cc -I/repo/src -I/repo -c b.cc",
     "file": "b.cc"}
  ])json");
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->AllIncludeDirs(),
            (std::vector<std::string>{"/repo/src", "/repo"}));
  EXPECT_NE(db->EntryFor("/b/a.cc"), nullptr);
  EXPECT_EQ(db->EntryFor("/nope.cc"), nullptr);
}

TEST(CompileCommandsTest, RejectsNonArrayInput) {
  EXPECT_FALSE(CompileCommands::Parse("{\"not\": \"an array\"}").ok());
  EXPECT_FALSE(CompileCommands::Parse("").ok());
}

TEST(CompileCommandsTest, IgnoresUnknownKeysAndScalars) {
  auto db = CompileCommands::Parse(R"json([
    {"directory": "/b", "file": "a.cc", "command": "cc -c a.cc",
     "output": "a.o", "weight": 3}
  ])json");
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->entries().size(), 1u);
}

}  // namespace
}  // namespace spongefiles::lint
