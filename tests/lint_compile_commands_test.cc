#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "lint/compile_commands.h"

namespace spongefiles::lint {
namespace {

// A scratch file under the test's temp dir, removed on destruction.
class TempFile {
 public:
  TempFile(const std::string& name, const std::string& contents)
      : path_(::testing::TempDir() + name) {
    std::ofstream out(path_);
    out << contents;
  }
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(CompileCommandsTest, ParsesCommandString) {
  auto db = CompileCommands::Parse(R"json([
    {
      "directory": "/repo/build",
      "command": "/usr/bin/c++ -I/repo/src -isystem /opt/inc -Irel -o x.o -c /repo/src/x.cc",
      "file": "/repo/src/x.cc"
    }
  ])json");
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  ASSERT_EQ(db->entries().size(), 1u);
  const CompileEntry& e = db->entries()[0];
  EXPECT_EQ(e.file, "/repo/src/x.cc");
  EXPECT_EQ(e.directory, "/repo/build");
  EXPECT_EQ(e.include_dirs,
            (std::vector<std::string>{"/repo/src", "/opt/inc",
                                      "/repo/build/rel"}));
}

TEST(CompileCommandsTest, ParsesArgumentsList) {
  auto db = CompileCommands::Parse(R"json([
    {
      "directory": "/b",
      "arguments": ["c++", "-I", "/repo/src", "-c", "y.cc"],
      "file": "y.cc"
    }
  ])json");
  ASSERT_TRUE(db.ok());
  ASSERT_EQ(db->entries().size(), 1u);
  // A relative "file" is resolved against the directory.
  EXPECT_EQ(db->entries()[0].file, "/b/y.cc");
  EXPECT_EQ(db->entries()[0].include_dirs,
            (std::vector<std::string>{"/repo/src"}));
}

TEST(CompileCommandsTest, AllIncludeDirsDeduplicates) {
  auto db = CompileCommands::Parse(R"json([
    {"directory": "/b", "command": "cc -I/repo/src -c a.cc", "file": "a.cc"},
    {"directory": "/b", "command": "cc -I/repo/src -I/repo -c b.cc",
     "file": "b.cc"}
  ])json");
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->AllIncludeDirs(),
            (std::vector<std::string>{"/repo/src", "/repo"}));
  EXPECT_NE(db->EntryFor("/b/a.cc"), nullptr);
  EXPECT_EQ(db->EntryFor("/nope.cc"), nullptr);
}

TEST(CompileCommandsTest, RejectsNonArrayInput) {
  EXPECT_FALSE(CompileCommands::Parse("{\"not\": \"an array\"}").ok());
  EXPECT_FALSE(CompileCommands::Parse("").ok());
}

TEST(CompileCommandsTest, IgnoresUnknownKeysAndScalars) {
  auto db = CompileCommands::Parse(R"json([
    {"directory": "/b", "file": "a.cc", "command": "cc -c a.cc",
     "output": "a.o", "weight": 3}
  ])json");
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->entries().size(), 1u);
}

TEST(CompileCommandsTest, EscapedQuotesInCommandStrings) {
  // The JSON layer escapes the quote; the shell layer must then keep the
  // quoted span (with its space) as one argument.
  auto db = CompileCommands::Parse(R"json([
    {"directory": "/b",
     "command": "cc -I\"/opt/my inc\" -I'/opt/other inc' -I/plain -c a.cc",
     "file": "a.cc"}
  ])json");
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  ASSERT_EQ(db->entries().size(), 1u);
  EXPECT_EQ(db->entries()[0].include_dirs,
            (std::vector<std::string>{"/opt/my inc", "/opt/other inc",
                                      "/plain"}));
}

TEST(CompileCommandsTest, BackslashEscapedSpaceInCommand) {
  auto db = CompileCommands::Parse(R"json([
    {"directory": "/b",
     "command": "cc -I/opt/my\\ inc -c a.cc",
     "file": "a.cc"}
  ])json");
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_EQ(db->entries()[0].include_dirs,
            (std::vector<std::string>{"/opt/my inc"}));
}

TEST(CompileCommandsTest, ExpandsResponseFiles) {
  TempFile rsp("cc_test.rsp", "-I/from/rsp\n-isystem\n/rsp/sys\n");
  auto db = CompileCommands::Parse(
      R"json([
        {"directory": "/b",
         "command": "cc -I/direct @)json" +
      rsp.path() + R"json( -c a.cc",
         "file": "a.cc"}
      ])json");
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_EQ(db->entries()[0].include_dirs,
            (std::vector<std::string>{"/direct", "/from/rsp", "/rsp/sys"}));
}

TEST(CompileCommandsTest, ResponseFileRelativeToEntryDirectory) {
  TempFile rsp("cc_rel.rsp", "-Irsp_rel");
  std::string dir = ::testing::TempDir();
  while (!dir.empty() && dir.back() == '/') dir.pop_back();
  auto db = CompileCommands::Parse(R"json([
    {"directory": ")json" + dir + R"json(",
     "command": "cc @cc_rel.rsp -c a.cc",
     "file": "a.cc"}
  ])json");
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  // The -I from the response file is itself relative, so it chains off the
  // entry directory too.
  EXPECT_EQ(db->entries()[0].include_dirs,
            (std::vector<std::string>{dir + "/rsp_rel"}));
}

TEST(CompileCommandsTest, MissingResponseFileIsDropped) {
  auto db = CompileCommands::Parse(R"json([
    {"directory": "/b",
     "command": "cc -I/keep @/no/such/file.rsp -c a.cc",
     "file": "a.cc"}
  ])json");
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_EQ(db->entries()[0].include_dirs,
            (std::vector<std::string>{"/keep"}));
}

TEST(CompileCommandsTest, SelfReferencingResponseFileTerminates) {
  // A response file that names itself must not loop forever; the depth
  // bound cuts the cycle and the remaining args still parse.
  std::string name = "cc_cycle.rsp";
  TempFile rsp(name, "-I/cycle\n@" + ::testing::TempDir() + name + "\n");
  auto db = CompileCommands::Parse(R"json([
    {"directory": "/b",
     "command": "cc @)json" + rsp.path() + R"json( -c a.cc",
     "file": "a.cc"}
  ])json");
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  ASSERT_FALSE(db->entries()[0].include_dirs.empty());
  EXPECT_EQ(db->entries()[0].include_dirs[0], "/cycle");
}

TEST(CompileCommandsTest, RelativeDirectoryResolvesAgainstBaseDir) {
  auto db = CompileCommands::Parse(R"json([
    {"directory": "out/debug",
     "command": "cc -Iinc -c a.cc",
     "file": "a.cc"}
  ])json",
                                   "/repo");
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  const CompileEntry& e = db->entries()[0];
  EXPECT_EQ(e.directory, "/repo/out/debug");
  EXPECT_EQ(e.file, "/repo/out/debug/a.cc");
  EXPECT_EQ(e.include_dirs,
            (std::vector<std::string>{"/repo/out/debug/inc"}));
}

TEST(CompileCommandsTest, LoadResolvesRelativeDirectory) {
  TempFile json("cc_db.json", R"json([
    {"directory": "sub", "command": "cc -Iinc -c a.cc", "file": "a.cc"}
  ])json");
  auto db = CompileCommands::Load(json.path());
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  std::string dir = ::testing::TempDir();
  while (!dir.empty() && dir.back() == '/') dir.pop_back();
  EXPECT_EQ(db->entries()[0].directory, dir + "/sub");
  EXPECT_EQ(db->entries()[0].file, dir + "/sub/a.cc");
}

}  // namespace
}  // namespace spongefiles::lint
