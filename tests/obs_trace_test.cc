#include "obs/trace.h"

#include <gtest/gtest.h>

#include <string>

#include "sim/engine.h"
#include "sim/task.h"

namespace spongefiles::obs {
namespace {

// A hand-advanced clock: SpanGuard only needs `int64_t now() const`.
struct ManualClock {
  int64_t t = 0;
  int64_t now() const { return t; }
};

TEST(TracerTest, DisabledTracerRecordsNothing) {
  Tracer tracer;
  ManualClock clock;
  tracer.CompleteEvent(0, 5, 1, 1, "cat", "x");
  tracer.InstantEvent(1, 1, 1, "cat", "y");
  {
    SpanGuard span(&tracer, &clock, 1, 1, "cat", "z");
  }
  EXPECT_EQ(tracer.event_count(), 0u);
}

TEST(TracerTest, SpanGuardRecordsNestedSpans) {
  Tracer tracer;
  tracer.set_enabled(true);
  ManualClock clock;
  {
    SpanGuard outer(&tracer, &clock, 3, 7, "mapred", "outer");
    clock.t = 10;
    {
      SpanGuard inner(&tracer, &clock, 3, 7, "sponge", "inner");
      inner.Arg("bytes", uint64_t{128});
      clock.t = 25;
    }
    clock.t = 40;
  }
  ASSERT_EQ(tracer.event_count(), 2u);
  auto inner = tracer.SpansNamed("inner");
  auto outer = tracer.SpansNamed("outer");
  ASSERT_EQ(inner.size(), 1u);
  ASSERT_EQ(outer.size(), 1u);
  EXPECT_EQ(inner[0], std::make_pair(int64_t{10}, int64_t{15}));
  EXPECT_EQ(outer[0], std::make_pair(int64_t{0}, int64_t{40}));
  // The inner span is fully contained in the outer one.
  EXPECT_GE(inner[0].first, outer[0].first);
  EXPECT_LE(inner[0].first + inner[0].second,
            outer[0].first + outer[0].second);
}

TEST(TracerTest, JsonCarriesEventFieldsAndSeq) {
  Tracer tracer;
  tracer.set_enabled(true);
  tracer.CompleteEvent(5, 10, 2, 9, "disk", "disk.write",
                       {TraceArg::Num("bytes", uint64_t{4096})});
  tracer.InstantEvent(7, 2, 9, "sponge", "spill.decision",
                      {TraceArg::Str("reason", "pool-full")});
  std::string json = tracer.ToJson();
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(json.find("\"name\":\"disk.write\",\"cat\":\"disk\",\"ph\":\"X\""
                      ",\"ts\":5,\"dur\":10,\"pid\":2,\"tid\":9,"
                      "\"args\":{\"seq\":0,\"bytes\":4096}"),
            std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\",\"s\":\"t\",\"ts\":7"),
            std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"seq\":1,\"reason\":\"pool-full\"}"),
            std::string::npos);
}

TEST(TracerTest, ClearResetsEventsAndSequence) {
  Tracer tracer;
  tracer.set_enabled(true);
  tracer.InstantEvent(1, 0, 0, "c", "a");
  tracer.Clear();
  EXPECT_EQ(tracer.event_count(), 0u);
  tracer.InstantEvent(1, 0, 0, "c", "a");
  EXPECT_NE(tracer.ToJson().find("\"seq\":0"), std::string::npos);
}

// One small simulated scenario: two activities interleave via delays,
// each recording spans against the engine clock.
sim::Task<> Activity(sim::Engine* engine, Tracer* tracer, uint64_t pid,
                     Duration step) {
  for (int i = 0; i < 3; ++i) {
    SpanGuard span(tracer, engine, pid, 0, "test", "work");
    span.Arg("round", static_cast<uint64_t>(i));
    co_await engine->Delay(step);
  }
  tracer->InstantEvent(engine->now(), pid, 0, "test", "done");
}

std::string RunScenario() {
  sim::Engine engine;
  Tracer tracer;
  tracer.set_enabled(true);
  engine.Spawn(Activity(&engine, &tracer, 1, 10));
  engine.Spawn(Activity(&engine, &tracer, 2, 7));
  engine.Run();
  return tracer.ToJson();
}

TEST(TracerTest, IdenticalSimRunsProduceByteIdenticalTraces) {
  std::string first = RunScenario();
  std::string second = RunScenario();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
  // Simulated timestamps (not wall clock) drive the trace: the spans at
  // pid 2 tick every 7 us.
  EXPECT_NE(first.find("\"ts\":7,"), std::string::npos);
  EXPECT_NE(first.find("\"ts\":14,"), std::string::npos);
}

TEST(TracerTest, DefaultIsProcessWideSingleton) {
  EXPECT_EQ(&Tracer::Default(), &Tracer::Default());
  EXPECT_FALSE(Tracer::Default().enabled());  // off unless a flag enables it
}

}  // namespace
}  // namespace spongefiles::obs
