// Tests for the shard-affinity ownership pass (the static half of the
// shard-safety analysis; the dynamic half lives in sim_access_test.cc).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "lint/analyzer.h"
#include "lint/diagnostic.h"

namespace spongefiles::lint {
namespace {

// Check ids of the UNWAIVED diagnostics, in line order.
std::vector<std::string> Ids(const FileReport& report) {
  std::vector<std::string> out;
  for (const Diagnostic& d : report.diagnostics) {
    if (!d.waived) out.push_back(CheckId(d.check));
  }
  return out;
}

FileReport Analyze(const std::string& source,
                   const std::string& path = "src/sponge/fake.cc") {
  return AnalyzeSource(path, source);
}

// ---- annotation parsing ---------------------------------------------------

TEST(ShardAffinityTest, AllAffinityKindsParse) {
  FileReport r = Analyze(R"cc(
    // lint: shard(node)
    class NodeThing { int x_; };
    // lint: shard(rack)
    class RackThing { int x_; };
    // lint: shard(value)
    struct ValueThing { int x; };
    // lint: shard(channel)
    class ChannelThing { int x_; };
    // lint: shard(global: the one sanctioned shared thing)
    class GlobalThing { int x_; };
  )cc");
  EXPECT_TRUE(Ids(r).empty()) << r.diagnostics.size();
}

TEST(ShardAffinityTest, GlobalWithoutReasonIsFlagged) {
  FileReport r = Analyze(R"cc(
    // lint: shard(global)
    class Board { int x_; };
  )cc");
  EXPECT_EQ(Ids(r), (std::vector<std::string>{"affinity"}));
}

TEST(ShardAffinityTest, UnknownAffinityKindIsFlagged) {
  // Two diagnostics: the malformed clause, and the class it failed to
  // annotate (which is therefore missing an annotation).
  FileReport r = Analyze(R"cc(
    // lint: shard(planet)
    class Board { int x_; };
  )cc");
  EXPECT_EQ(Ids(r), (std::vector<std::string>{"affinity", "affinity"}));
}

TEST(ShardAffinityTest, ClauseAttachedToNothingIsFlagged) {
  FileReport r = Analyze(R"cc(
    // lint: shard(node)
    int free_function() { return 0; }
  )cc");
  EXPECT_EQ(Ids(r), (std::vector<std::string>{"affinity"}));
}

// ---- missing annotations --------------------------------------------------

TEST(ShardAffinityTest, UnannotatedComponentClassIsFlagged) {
  FileReport r = Analyze(R"cc(
    class Widget {
     public:
      int x() const { return x_; }
     private:
      int x_;
    };
  )cc");
  EXPECT_EQ(Ids(r), (std::vector<std::string>{"affinity"}));
}

TEST(ShardAffinityTest, UnannotatedClassOutsideComponentLayerPasses) {
  FileReport r = Analyze(R"cc(
    class Widget { int x_; };
  )cc",
                         "src/common/fake.cc");
  EXPECT_TRUE(Ids(r).empty());
}

TEST(ShardAffinityTest, NestedClassInheritsEnclosingAffinity) {
  FileReport r = Analyze(R"cc(
    // lint: shard(node)
    class Pool {
     public:
      struct Slot { int index; };
     private:
      int x_;
    };
  )cc");
  EXPECT_TRUE(Ids(r).empty());
}

// ---- cross-domain accesses ------------------------------------------------

TEST(ShardAffinityTest, CrossShardMemberAccessIsFlagged) {
  FileReport r = Analyze(R"cc(
    // lint: shard(node)
    class Server {
     public:
      bool alive() const { return alive_; }
     private:
      bool alive_;
    };
    // lint: shard(rack)
    class Tracker {
     public:
      void Poll() {
        if (!server_->alive()) { return; }
      }
     private:
      Server* server_;
    };
  )cc");
  EXPECT_EQ(Ids(r), (std::vector<std::string>{"shard"}));
}

TEST(ShardAffinityTest, SameDomainAccessPasses) {
  FileReport r = Analyze(R"cc(
    // lint: shard(node)
    class Disk { public: void Seek(); };
    // lint: shard(node)
    class Cache {
     public:
      void Flush() { disk_->Seek(); }
     private:
      Disk* disk_;
    };
  )cc");
  EXPECT_TRUE(Ids(r).empty());
}

TEST(ShardAffinityTest, ValueChannelAndGlobalTargetsPass) {
  FileReport r = Analyze(R"cc(
    // lint: shard(value)
    struct Config { int chunk_size; };
    // lint: shard(channel)
    class Network { public: void Transfer(); };
    // lint: shard(global: sanctioned oracle)
    class Registry { public: bool IsAlive(); };
    // lint: shard(node)
    class Server {
     public:
      void Op() {
        int n = config_->chunk_size;
        network_->Transfer();
        registry_->IsAlive();
      }
     private:
      Config* config_;
      Network* network_;
      Registry* registry_;
    };
  )cc");
  EXPECT_TRUE(Ids(r).empty());
}

TEST(ShardAffinityTest, IdentityMembersNeverFlag) {
  FileReport r = Analyze(R"cc(
    // lint: shard(node)
    class Server {
     public:
      size_t node_id() const { return node_id_; }
     private:
      size_t node_id_;
    };
    // lint: shard(rack)
    class Tracker {
     public:
      size_t HomeOf() { return server_->node_id(); }
     private:
      Server* server_;
    };
  )cc");
  EXPECT_TRUE(Ids(r).empty());
}

TEST(ShardAffinityTest, AccessorChainBindsThroughReturnType) {
  FileReport r = Analyze(R"cc(
    // lint: shard(node)
    class Node {
     public:
      int free_slots() const { return free_slots_; }
     private:
      int free_slots_;
    };
    // lint: shard(global: the cluster owns the node table)
    class Cluster {
     public:
      Node& node(size_t i);
    };
    // lint: shard(rack)
    class Tracker {
     public:
      int Probe(size_t i) { return cluster_->node(i).free_slots(); }
     private:
      Cluster* cluster_;
    };
  )cc");
  EXPECT_EQ(Ids(r), (std::vector<std::string>{"shard"}));
}

// ---- waivers --------------------------------------------------------------

TEST(ShardAffinityTest, ShardOkWaiverSuppresses) {
  FileReport r = Analyze(R"cc(
    // lint: shard(node)
    class Server {
     public:
      bool alive() const { return alive_; }
     private:
      bool alive_;
    };
    // lint: shard(rack)
    class Tracker {
     public:
      void Poll() {
        // lint: shard-ok(liveness observed via poll timeout)
        if (!server_->alive()) { return; }
      }
     private:
      Server* server_;
    };
  )cc");
  EXPECT_TRUE(Ids(r).empty());
  // The waived diagnostic is still present, carrying its reason.
  bool found = false;
  for (const Diagnostic& d : r.diagnostics) {
    if (d.waived && d.check == Check::kShardCross) {
      found = true;
      EXPECT_EQ(d.waiver_reason, "liveness observed via poll timeout");
    }
  }
  EXPECT_TRUE(found);
}

TEST(ShardAffinityTest, OrphanWaiverIsFlagged) {
  FileReport r = Analyze(R"cc(
    // lint: shard(node)
    class Server {
     public:
      void Op() {
        // lint: shard-ok(this matches nothing)
        int x = 1;
      }
    };
  )cc");
  EXPECT_EQ(Ids(r), (std::vector<std::string>{"orphan"}));
}

TEST(ShardAffinityTest, ShardClauseIsNotAnOrphanWaiver) {
  // A shard(...) clause must parse as an affinity annotation, not as an
  // unknown waiver tag (the orphan pass would otherwise flag every
  // annotation in the tree).
  FileReport r = Analyze(R"cc(
    // lint: shard(value)
    struct Config { int x; };
  )cc");
  EXPECT_TRUE(Ids(r).empty());
}

}  // namespace
}  // namespace spongefiles::lint
