#include "common/random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace spongefiles {
namespace {

TEST(RngTest, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
    int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 100000; ++i) {
    double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 100000, 0.5, 0.01);
}

TEST(RngTest, NormalMoments) {
  Rng rng(11);
  double sum = 0;
  double sq = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    double x = rng.Normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(13);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(4.0);
  EXPECT_NEAR(sum / n, 4.0, 0.1);
}

TEST(ZipfTest, PmfSumsToOne) {
  ZipfSampler zipf(100, 1.0);
  double total = 0;
  for (size_t k = 0; k < zipf.n(); ++k) total += zipf.Pmf(k);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfTest, RankZeroMostPopular) {
  ZipfSampler zipf(50, 1.1);
  for (size_t k = 1; k < zipf.n(); ++k) {
    EXPECT_GT(zipf.Pmf(k - 1), zipf.Pmf(k));
  }
}

TEST(ZipfTest, EmpiricalMatchesPmf) {
  ZipfSampler zipf(20, 1.0);
  Rng rng(17);
  std::vector<int> counts(20, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) counts[zipf.Sample(rng)]++;
  for (size_t k = 0; k < 20; ++k) {
    double expected = zipf.Pmf(k);
    double observed = static_cast<double>(counts[k]) / n;
    EXPECT_NEAR(observed, expected, 0.01) << "rank " << k;
  }
}

TEST(ZipfTest, HighExponentConcentrates) {
  ZipfSampler zipf(1000, 2.0);
  // With s=2 the head rank holds the majority of the mass.
  EXPECT_GT(zipf.Pmf(0), 0.5);
}

}  // namespace
}  // namespace spongefiles
