#include "mapred/record.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace spongefiles::mapred {
namespace {

TEST(RecordSerdeTest, RoundTripSimple) {
  Record in;
  in.key = "domain.com";
  in.number = 0.75;
  in.fields = {"english", "click here"};
  in.size = 1000;
  ByteRuns wire;
  SerializeRecord(in, &wire);
  EXPECT_EQ(wire.size(), 1000u);

  RecordParser parser;
  parser.Feed(wire);
  Record out;
  ASSERT_TRUE(parser.Next(&out));
  EXPECT_EQ(out, in);
  EXPECT_FALSE(parser.Next(&out));
  EXPECT_EQ(parser.pending_bytes(), 0u);
}

TEST(RecordSerdeTest, HeaderOnlyRecordWhenSizeSmall) {
  Record in;
  in.key = "k";
  in.size = 1;  // smaller than the header: wire size is the header size
  ByteRuns wire;
  SerializeRecord(in, &wire);
  EXPECT_EQ(wire.size(), RecordHeaderSize(in));
  RecordParser parser;
  parser.Feed(wire);
  Record out;
  ASSERT_TRUE(parser.Next(&out));
  EXPECT_EQ(out.key, "k");
  EXPECT_EQ(out.size, RecordHeaderSize(in));
}

TEST(RecordSerdeTest, EmptyFieldsAndKey) {
  Record in;
  in.size = 64;
  ByteRuns wire;
  SerializeRecord(in, &wire);
  RecordParser parser;
  parser.Feed(wire);
  Record out;
  ASSERT_TRUE(parser.Next(&out));
  EXPECT_EQ(out.key, "");
  EXPECT_TRUE(out.fields.empty());
  EXPECT_EQ(out.size, 64u);
}

TEST(RecordSerdeTest, SerializedSizeMatchesWire) {
  Record in;
  in.key = "abc";
  in.fields = {"x"};
  in.size = 500;
  ByteRuns wire;
  SerializeRecord(in, &wire);
  EXPECT_EQ(SerializedSize(in), wire.size());
}

TEST(RecordSerdeTest, RecordsSpanningChunkBoundaries) {
  // Serialize many records, then feed the stream in awkward chunk sizes.
  std::vector<Record> records;
  ByteRuns wire;
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    Record r;
    r.key = "key" + std::to_string(i);
    r.number = static_cast<double>(i) * 1.5;
    r.fields = {std::string(rng.Uniform(50), 'x')};
    r.size = 100 + rng.Uniform(400);
    SerializeRecord(r, &wire);
    ByteRuns one;
    SerializeRecord(r, &one);
    r.size = one.size();  // normalize for comparison
    records.push_back(std::move(r));
  }

  RecordParser parser;
  std::vector<Record> parsed;
  uint64_t offset = 0;
  Rng chunk_rng(9);
  while (offset < wire.size()) {
    uint64_t n = std::min<uint64_t>(1 + chunk_rng.Uniform(333),
                                    wire.size() - offset);
    parser.Feed(wire.SubRange(offset, n));
    offset += n;
    Record out;
    while (parser.Next(&out)) parsed.push_back(out);
  }
  ASSERT_EQ(parsed.size(), records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(parsed[i], records[i]) << "record " << i;
  }
}

TEST(RecordSerdeTest, NumberPrecisionPreserved) {
  Record in;
  in.key = "quantile";
  in.number = 0.12345678901234567;
  ByteRuns wire;
  SerializeRecord(in, &wire);
  RecordParser parser;
  parser.Feed(wire);
  Record out;
  ASSERT_TRUE(parser.Next(&out));
  EXPECT_DOUBLE_EQ(out.number, in.number);
}

TEST(RecordSerdeTest, ManyFields) {
  Record in;
  in.key = "multi";
  for (int i = 0; i < 100; ++i) in.fields.push_back("f" + std::to_string(i));
  ByteRuns wire;
  SerializeRecord(in, &wire);
  RecordParser parser;
  parser.Feed(wire);
  Record out;
  ASSERT_TRUE(parser.Next(&out));
  EXPECT_EQ(out.fields.size(), 100u);
  EXPECT_EQ(out.fields[99], "f99");
}

}  // namespace
}  // namespace spongefiles::mapred
