// Shard-runtime tests for the conservative parallel engine (DESIGN.md
// §13): cross-shard messages land exactly on the lookahead horizon, ring
// hand-offs inside one shard stay zero-latency, DrainDetached keeps its
// spawn-order guarantee across lanes, the lane-partitioned registries
// round-trip ids, and — the tentpole invariant — the serial (seq) and
// threaded (par) sharded drivers produce identical simulations, including
// under the chaos sweep's seeded gray-failure schedules. tools/check.sh
// --tsan runs this binary under ThreadSanitizer to certify the threaded
// driver's host-level synchronization.

#include "sim/parallel.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/units.h"
#include "mapred/job.h"
#include "sim/engine.h"
#include "sponge/failure.h"
#include "sponge/task_registry.h"
#include "workload/testbed.h"

namespace spongefiles {
namespace {

using sim::Engine;
using sim::Sharding;

constexpr Duration kLookahead = Micros(100);

// Two worker lanes (nodes 0 and 1), serial driver unless stated.
sim::ShardPlan TwoLanePlan() { return sim::NodeShardPlan(2, kLookahead); }

// ---- window mechanics ------------------------------------------------------

sim::Task<> HopAfter(Engine* engine, Duration wait, uint32_t lane,
                     std::vector<SimTime>* arrivals) {
  co_await engine->Delay(wait);
  co_await engine->HopToLane(lane);
  arrivals->push_back(engine->now());
}

TEST(ParallelEngineTest, CrossShardHopArrivesAtWindowBoundary) {
  Engine engine;
  Sharding sharding(&engine, TwoLanePlan());
  std::vector<SimTime> arrivals;
  // Emitted mid-window (t = 30 inside [0, 100)): the hop is buffered in
  // the outbox and clamped to the window edge — it cannot arrive before
  // the horizon, because lane 0 may already have run past 30.
  engine.SpawnOnShard(1, 0, HopAfter(&engine, Micros(30), 0, &arrivals));
  engine.Run();
  ASSERT_EQ(arrivals.size(), 1u);
  EXPECT_EQ(arrivals[0], kLookahead);
}

TEST(ParallelEngineTest, HopAtExactHorizonPaysOneMoreWindow) {
  Engine engine;
  Sharding sharding(&engine, TwoLanePlan());
  std::vector<SimTime> arrivals;
  // Emitted exactly at the horizon (the first event of window [100, 200)):
  // delivery clamps to *that* window's edge, so the message costs a full
  // further lookahead. This is the quantization every cross-shard
  // interaction pays; the lookahead is a lower bound on real latency, so
  // the result is conservative, never early.
  engine.SpawnOnShard(1, 0, HopAfter(&engine, kLookahead, 0, &arrivals));
  engine.Run();
  ASSERT_EQ(arrivals.size(), 1u);
  EXPECT_EQ(arrivals[0], 2 * kLookahead);
}

TEST(ParallelEngineTest, WorkerToWorkerHopAlsoClampsToHorizon) {
  Engine engine;
  Sharding sharding(&engine, TwoLanePlan());
  std::vector<SimTime> arrivals;
  engine.SpawnOnShard(1, 0, HopAfter(&engine, Micros(70), 2, &arrivals));
  engine.Run();
  ASSERT_EQ(arrivals.size(), 1u);
  EXPECT_EQ(arrivals[0], kLookahead);
}

sim::Task<> YieldStorm(Engine* engine, int yields, int* count,
                       SimTime* finished_at) {
  for (int i = 0; i < yields; ++i) {
    co_await engine->Delay(0);
    ++*count;
  }
  *finished_at = engine->now();
}

TEST(ParallelEngineTest, SameShardZeroDelayHandoffsStayAtOneInstant) {
  Engine engine;
  Sharding sharding(&engine, TwoLanePlan());
  int count = 0;
  SimTime a = -1, b = -1;
  // Two coroutines ping-ponging through lane 1's ring: all 2 * 1000
  // hand-offs complete inside the first window without simulated time
  // moving at all — sharding must not tax the zero-delay fast path.
  engine.SpawnOnShard(1, 0, YieldStorm(&engine, 1000, &count, &a));
  engine.SpawnOnShard(1, 0, YieldStorm(&engine, 1000, &count, &b));
  engine.Run();
  EXPECT_EQ(count, 2000);
  EXPECT_EQ(a, 0);
  EXPECT_EQ(b, 0);
  EXPECT_EQ(engine.lane_events(2), 0u);  // lane 2 never had work
}

// ---- DrainDetached ordering ------------------------------------------------

struct DtorNote {
  std::vector<int>* log;
  int id;
  ~DtorNote() { log->push_back(id); }
};

sim::Task<> ParkForever(Engine* engine, std::vector<int>* log, int id) {
  DtorNote note{log, id};
  co_await engine->Delay(Minutes(600.0));
}

TEST(ParallelEngineTest, DrainDetachedDestroysLaneZeroFirstThenLaneOrder) {
  std::vector<int> log;
  {
    Engine engine;
    Sharding sharding(&engine, TwoLanePlan());
    // Interleaved spawn order across lanes; ids name lane * 10 + seq.
    engine.SpawnOnShard(2, 0, ParkForever(&engine, &log, 20));
    engine.SpawnOnShard(0, 0, ParkForever(&engine, &log, 0));
    engine.SpawnOnShard(1, 0, ParkForever(&engine, &log, 10));
    engine.SpawnOnShard(1, 0, ParkForever(&engine, &log, 11));
    engine.SpawnOnShard(2, 0, ParkForever(&engine, &log, 21));
    // One bounded run so every frame starts and parks on its long delay.
    engine.RunUntil(Micros(1));
    EXPECT_EQ(engine.detached_live(), 5u);
    EXPECT_EQ(engine.DrainDetached(), 5u);
  }
  // Global lane first, then each worker lane; spawn order within a lane.
  EXPECT_EQ(log, std::vector<int>({0, 10, 11, 20, 21}));
}

// ---- lane-partitioned registries -------------------------------------------

sim::Task<> MintTask(sponge::TaskRegistry* registry, size_t node,
                     uint64_t* id) {
  *id = registry->Register(node);
  co_return;
}

sim::Task<> MintReplica(sponge::ReplicaDirectory* directory, uint64_t owner,
                        size_t node, uint64_t* id) {
  *id = directory->Register(owner, /*size=*/100, /*checksum=*/42);
  sponge::ReplicaLocation location;
  location.node = node;
  directory->AddLocation(*id, location);
  co_return;
}

TEST(ParallelEngineTest, RegistryIdsEncodeMintingLaneAndRoundTrip) {
  Engine engine;
  Sharding sharding(&engine, TwoLanePlan());
  sponge::TaskRegistry registry;
  registry.AttachEngine(&engine);

  uint64_t id0 = 0, id1 = 0, id2 = 0;
  engine.SpawnOnShard(0, 0, MintTask(&registry, 0, &id0));
  engine.SpawnOnShard(1, 0, MintTask(&registry, 0, &id1));
  engine.SpawnOnShard(2, 0, MintTask(&registry, 1, &id2));
  engine.Run();

  // Lane 0 mints legacy plain-sequence ids; worker lanes tag the top bits.
  EXPECT_LT(id0, uint64_t(1) << 40);
  EXPECT_EQ(id1 >> 40, 1u);
  EXPECT_EQ(id2 >> 40, 2u);

  // Lookups route by id to the minting partition (driver context here —
  // the global lane may read every partition).
  EXPECT_TRUE(registry.IsAlive(id0));
  EXPECT_TRUE(registry.IsAlive(id1));
  EXPECT_TRUE(registry.IsAliveOn(id2, 1));
  EXPECT_FALSE(registry.IsAliveOn(id2, 0));
  EXPECT_EQ(registry.live_count(), 3u);
  ASSERT_TRUE(registry.NodeOf(id1).ok());
  EXPECT_EQ(*registry.NodeOf(id1), 0u);

  // An id no partition could have minted is simply unknown.
  EXPECT_FALSE(registry.IsAlive((uint64_t(7) << 40) | 1));

  registry.Deregister(id1);
  EXPECT_FALSE(registry.IsAlive(id1));
  EXPECT_EQ(registry.live_count(), 2u);
}

TEST(ParallelEngineTest, ReplicaDirectoryScansEveryPartitionInLaneOrder) {
  Engine engine;
  Sharding sharding(&engine, TwoLanePlan());
  sponge::TaskRegistry registry;
  registry.AttachEngine(&engine);
  sponge::ReplicaDirectory& directory = registry.replicas();

  uint64_t rid0 = 0, rid1 = 0, rid2 = 0;
  engine.SpawnOnShard(0, 0, MintReplica(&directory, 1, /*node=*/1, &rid0));
  engine.SpawnOnShard(1, 0, MintReplica(&directory, 2, /*node=*/1, &rid1));
  engine.SpawnOnShard(2, 0, MintReplica(&directory, 3, /*node=*/0, &rid2));
  engine.Run();

  EXPECT_EQ(directory.size(), 3u);
  ASSERT_NE(directory.Find(rid1), nullptr);
  EXPECT_EQ(directory.Find(rid1)->owner_task, 2u);

  // The dead-server scan walks partitions in lane order: lane 0's entry
  // precedes lane 1's even though ids no longer sort globally.
  std::vector<uint64_t> on_node1 = directory.ChunksOn(1);
  ASSERT_EQ(on_node1.size(), 2u);
  EXPECT_EQ(on_node1[0], rid0);
  EXPECT_EQ(on_node1[1], rid1);

  directory.Forget(rid1);
  EXPECT_EQ(directory.Find(rid1), nullptr);
  EXPECT_EQ(directory.size(), 2u);
}

// ---- seq vs par byte identity ----------------------------------------------

// Everything deterministic a run produces; the snapshots from the serial
// and the threaded sharded drivers must match field for field.
struct RunSnapshot {
  Duration runtime = 0;
  std::vector<mapred::Record> output;
  uint64_t events = 0;
  std::vector<uint64_t> lane_events;
  SimTime now = 0;
  uint64_t spilled = 0;
  uint64_t leaked = 0;
};

void ExpectIdentical(const RunSnapshot& seq, const RunSnapshot& par) {
  EXPECT_EQ(seq.runtime, par.runtime);
  EXPECT_EQ(seq.output, par.output);
  EXPECT_EQ(seq.events, par.events);
  EXPECT_EQ(seq.lane_events, par.lane_events);
  EXPECT_EQ(seq.now, par.now);
  EXPECT_EQ(seq.spilled, par.spilled);
  EXPECT_EQ(seq.leaked, par.leaked);
}

// The skewed median job on a small node-projected testbed; threads == 0 is
// the serial reference driver, threads > 0 the pool.
RunSnapshot RunMiniWorkload(unsigned threads, uint64_t chaos_seed) {
  workload::TestbedConfig bed_config;
  bed_config.num_nodes = 4;
  bed_config.sponge_memory = MiB(64);
  bed_config.shard_projection = workload::ShardProjection::kNode;
  bed_config.shard_threads = threads;
  workload::Testbed bed(bed_config);
  workload::NumbersDatasetConfig data;
  data.count = 20001;
  workload::NumbersDataset numbers(&bed.dfs(), "nums", data);

  sponge::FailureInjector injector(&bed.env(), chaos_seed);
  if (chaos_seed != 0) {
    sponge::ChaosOptions chaos;
    chaos.start = Seconds(2);
    chaos.horizon = Seconds(60);
    chaos.num_faults = 6;
    injector.ScheduleChaos(chaos);
  }

  auto job = workload::MakeMedianJob(&numbers, mapred::SpillMode::kSponge);
  job.speculation.enabled = true;
  job.speculation.check_period = Seconds(1);
  job.speculation.min_attempt_age = Seconds(3);
  auto result = bed.RunJob(std::move(job));

  RunSnapshot snap;
  if (result.ok()) {
    snap.runtime = result->runtime;
    snap.output = result->output;
    for (const auto& task : result->map_tasks) {
      snap.spilled += task.spill.bytes_spilled;
    }
    for (const auto& task : result->reduce_tasks) {
      snap.spilled += task.spill.bytes_spilled;
    }
  }
  if (chaos_seed != 0) {
    bed.engine().RunUntil(std::max(bed.engine().now(), Seconds(60)) +
                          Seconds(10));
    bool swept = false;
    auto sweep = [](workload::Testbed* tb, RunSnapshot* record,
                    bool* done) -> sim::Task<> {
      for (size_t n = 0; n < tb->cluster().size(); ++n) {
        (void)co_await tb->env().server(n).GcSweep();
        record->leaked +=
            tb->env().server(n).pool().AllocatedChunks().size();
      }
      *done = true;
    };
    bed.engine().Spawn(sweep(&bed, &snap, &swept));
    bed.engine().RunUntil(bed.engine().now() + Seconds(10));
    EXPECT_TRUE(swept);
  }
  snap.events = bed.engine().events_processed();
  snap.now = bed.engine().now();
  for (uint32_t l = 0; l < bed.engine().lane_count(); ++l) {
    snap.lane_events.push_back(bed.engine().lane_events(l));
  }
  return snap;
}

TEST(ParallelEngineTest, SeqAndParProduceIdenticalWorkloadRuns) {
  RunSnapshot seq = RunMiniWorkload(/*threads=*/0, /*chaos_seed=*/0);
  RunSnapshot par = RunMiniWorkload(/*threads=*/2, /*chaos_seed=*/0);
  ASSERT_EQ(seq.output.size(), 1u);
  ExpectIdentical(seq, par);
}

TEST(ParallelEngineTest, SeqAndParIdenticalUnderChaosSweep) {
  for (uint64_t seed : {1ull, 2ull}) {
    RunSnapshot seq = RunMiniWorkload(/*threads=*/0, seed);
    RunSnapshot par = RunMiniWorkload(/*threads=*/2, seed);
    ExpectIdentical(seq, par);
    EXPECT_EQ(seq.leaked, 0u) << "seed " << seed;
  }
}

}  // namespace
}  // namespace spongefiles
