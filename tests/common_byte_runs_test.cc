#include "common/byte_runs.h"

#include <gtest/gtest.h>

#include <string>

#include "common/checksum.h"
#include "common/random.h"

namespace spongefiles {
namespace {

std::string MakeData(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::string out(n, '\0');
  for (auto& c : out) c = static_cast<char>('a' + rng.Uniform(26));
  return out;
}

TEST(ByteRunsTest, EmptyByDefault) {
  ByteRuns runs;
  EXPECT_TRUE(runs.empty());
  EXPECT_EQ(runs.size(), 0u);
  EXPECT_EQ(runs.physical_size(), 0u);
}

TEST(ByteRunsTest, LiteralRoundTrip) {
  ByteRuns runs;
  std::string data = MakeData(1000, 7);
  runs.AppendLiteral(Slice(data));
  EXPECT_EQ(runs.size(), 1000u);
  EXPECT_EQ(runs.physical_size(), 1000u);
  auto bytes = runs.ToBytes();
  EXPECT_EQ(std::string(bytes.begin(), bytes.end()), data);
}

TEST(ByteRunsTest, ZerosAreLogicalOnly) {
  ByteRuns runs;
  runs.AppendZeros(1 << 20);
  EXPECT_EQ(runs.size(), 1u << 20);
  EXPECT_EQ(runs.physical_size(), 0u);
  uint8_t buf[16];
  runs.Read((1 << 20) - 16, 16, buf);
  for (uint8_t b : buf) EXPECT_EQ(b, 0);
}

TEST(ByteRunsTest, MixedRunsReadAcrossBoundaries) {
  ByteRuns runs;
  runs.AppendLiteral(Slice(std::string_view("head")));
  runs.AppendZeros(10);
  runs.AppendLiteral(Slice(std::string_view("tail")));
  EXPECT_EQ(runs.size(), 18u);
  auto bytes = runs.ToBytes();
  std::string expected = "head" + std::string(10, '\0') + "tail";
  EXPECT_EQ(std::string(bytes.begin(), bytes.end()), expected);

  // Partial read spanning the zero run.
  uint8_t buf[8];
  runs.Read(2, 8, buf);
  std::string got(reinterpret_cast<char*>(buf), 8);
  EXPECT_EQ(got, expected.substr(2, 8));
}

TEST(ByteRunsTest, AdjacentZeroRunsCoalesce) {
  ByteRuns runs;
  runs.AppendZeros(5);
  runs.AppendZeros(7);
  EXPECT_EQ(runs.size(), 12u);
  // Coalescing is observable through SplitPrefix producing one run cheaply;
  // here we just verify content.
  auto bytes = runs.ToBytes();
  for (uint8_t b : bytes) EXPECT_EQ(b, 0);
}

TEST(ByteRunsTest, SmallLiteralAppendsMerge) {
  ByteRuns runs;
  std::string expected;
  for (int i = 0; i < 100; ++i) {
    std::string piece = MakeData(17, static_cast<uint64_t>(i));
    runs.AppendLiteral(Slice(piece));
    expected += piece;
  }
  EXPECT_EQ(runs.size(), expected.size());
  auto bytes = runs.ToBytes();
  EXPECT_EQ(std::string(bytes.begin(), bytes.end()), expected);
}

TEST(ByteRunsTest, AppendOtherPreservesContent) {
  ByteRuns a;
  a.AppendLiteral(Slice(std::string_view("abc")));
  a.AppendZeros(3);
  ByteRuns b;
  b.AppendLiteral(Slice(std::string_view("xyz")));
  a.Append(b);
  auto bytes = a.ToBytes();
  std::string expected = "abc" + std::string(3, '\0') + "xyz";
  EXPECT_EQ(std::string(bytes.begin(), bytes.end()), expected);
}

TEST(ByteRunsTest, SplitPrefixExactBoundary) {
  ByteRuns runs;
  runs.AppendLiteral(Slice(std::string_view("0123456789")));
  ByteRuns prefix = runs.SplitPrefix(4);
  EXPECT_EQ(prefix.size(), 4u);
  EXPECT_EQ(runs.size(), 6u);
  auto p = prefix.ToBytes();
  auto r = runs.ToBytes();
  EXPECT_EQ(std::string(p.begin(), p.end()), "0123");
  EXPECT_EQ(std::string(r.begin(), r.end()), "456789");
}

TEST(ByteRunsTest, SplitPrefixInsideZeroRun) {
  ByteRuns runs;
  runs.AppendLiteral(Slice(std::string_view("ab")));
  runs.AppendZeros(10);
  runs.AppendLiteral(Slice(std::string_view("cd")));
  ByteRuns prefix = runs.SplitPrefix(7);
  EXPECT_EQ(prefix.size(), 7u);
  EXPECT_EQ(runs.size(), 7u);
  std::string expect_prefix = "ab" + std::string(5, '\0');
  std::string expect_rest = std::string(5, '\0') + "cd";
  auto p = prefix.ToBytes();
  auto r = runs.ToBytes();
  EXPECT_EQ(std::string(p.begin(), p.end()), expect_prefix);
  EXPECT_EQ(std::string(r.begin(), r.end()), expect_rest);
}

TEST(ByteRunsTest, SplitPrefixZeroAndFull) {
  ByteRuns runs;
  runs.AppendLiteral(Slice(std::string_view("xy")));
  ByteRuns empty = runs.SplitPrefix(0);
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(runs.size(), 2u);
  ByteRuns all = runs.SplitPrefix(2);
  EXPECT_EQ(all.size(), 2u);
  EXPECT_TRUE(runs.empty());
}

TEST(ByteRunsTest, ClearResets) {
  ByteRuns runs;
  runs.AppendLiteral(Slice(std::string_view("abc")));
  runs.AppendZeros(10);
  runs.Clear();
  EXPECT_TRUE(runs.empty());
  EXPECT_EQ(runs.physical_size(), 0u);
}

// Property test: random sequences of literal/zero appends and splits keep
// content identical to a reference std::string model.
class ByteRunsPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ByteRunsPropertyTest, MatchesReferenceModel) {
  Rng rng(GetParam());
  ByteRuns runs;
  std::string model;
  for (int step = 0; step < 200; ++step) {
    int op = static_cast<int>(rng.Uniform(3));
    if (op == 0) {
      std::string data = MakeData(rng.Uniform(300) + 1, rng.Next());
      runs.AppendLiteral(Slice(data));
      model += data;
    } else if (op == 1) {
      uint64_t n = rng.Uniform(500) + 1;
      runs.AppendZeros(n);
      model += std::string(n, '\0');
    } else if (!model.empty()) {
      uint64_t n = rng.Uniform(model.size() + 1);
      ByteRuns prefix = runs.SplitPrefix(n);
      auto p = prefix.ToBytes();
      EXPECT_EQ(std::string(p.begin(), p.end()), model.substr(0, n));
      model = model.substr(n);
    }
    ASSERT_EQ(runs.size(), model.size());
  }
  auto bytes = runs.ToBytes();
  EXPECT_EQ(std::string(bytes.begin(), bytes.end()), model);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ByteRunsPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(ChecksumTest, ZerosMatchLiteralZeros) {
  std::string zeros(1000, '\0');
  Checksum a;
  a.Update(Slice(zeros));
  Checksum b;
  b.UpdateZeros(1000);
  EXPECT_EQ(a.digest(), b.digest());
}

TEST(ChecksumTest, OrderSensitive) {
  EXPECT_NE(Checksum::Of(Slice(std::string_view("ab"))),
            Checksum::Of(Slice(std::string_view("ba"))));
}

}  // namespace
}  // namespace spongefiles
