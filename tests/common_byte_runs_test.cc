#include "common/byte_runs.h"

#include <gtest/gtest.h>

#include <string>

#include "common/checksum.h"
#include "common/random.h"

namespace spongefiles {
namespace {

std::string MakeData(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::string out(n, '\0');
  for (auto& c : out) c = static_cast<char>('a' + rng.Uniform(26));
  return out;
}

TEST(ByteRunsTest, EmptyByDefault) {
  ByteRuns runs;
  EXPECT_TRUE(runs.empty());
  EXPECT_EQ(runs.size(), 0u);
  EXPECT_EQ(runs.physical_size(), 0u);
}

TEST(ByteRunsTest, LiteralRoundTrip) {
  ByteRuns runs;
  std::string data = MakeData(1000, 7);
  runs.AppendLiteral(Slice(data));
  EXPECT_EQ(runs.size(), 1000u);
  EXPECT_EQ(runs.physical_size(), 1000u);
  auto bytes = runs.ToBytes();
  EXPECT_EQ(std::string(bytes.begin(), bytes.end()), data);
}

TEST(ByteRunsTest, ZerosAreLogicalOnly) {
  ByteRuns runs;
  runs.AppendZeros(1 << 20);
  EXPECT_EQ(runs.size(), 1u << 20);
  EXPECT_EQ(runs.physical_size(), 0u);
  uint8_t buf[16];
  runs.Read((1 << 20) - 16, 16, buf);
  for (uint8_t b : buf) EXPECT_EQ(b, 0);
}

TEST(ByteRunsTest, MixedRunsReadAcrossBoundaries) {
  ByteRuns runs;
  runs.AppendLiteral(Slice(std::string_view("head")));
  runs.AppendZeros(10);
  runs.AppendLiteral(Slice(std::string_view("tail")));
  EXPECT_EQ(runs.size(), 18u);
  auto bytes = runs.ToBytes();
  std::string expected = "head" + std::string(10, '\0') + "tail";
  EXPECT_EQ(std::string(bytes.begin(), bytes.end()), expected);

  // Partial read spanning the zero run.
  uint8_t buf[8];
  runs.Read(2, 8, buf);
  std::string got(reinterpret_cast<char*>(buf), 8);
  EXPECT_EQ(got, expected.substr(2, 8));
}

TEST(ByteRunsTest, AdjacentZeroRunsCoalesce) {
  ByteRuns runs;
  runs.AppendZeros(5);
  runs.AppendZeros(7);
  EXPECT_EQ(runs.size(), 12u);
  // Coalescing is observable through SplitPrefix producing one run cheaply;
  // here we just verify content.
  auto bytes = runs.ToBytes();
  for (uint8_t b : bytes) EXPECT_EQ(b, 0);
}

TEST(ByteRunsTest, SmallLiteralAppendsMerge) {
  ByteRuns runs;
  std::string expected;
  for (int i = 0; i < 100; ++i) {
    std::string piece = MakeData(17, static_cast<uint64_t>(i));
    runs.AppendLiteral(Slice(piece));
    expected += piece;
  }
  EXPECT_EQ(runs.size(), expected.size());
  auto bytes = runs.ToBytes();
  EXPECT_EQ(std::string(bytes.begin(), bytes.end()), expected);
}

TEST(ByteRunsTest, AppendOtherPreservesContent) {
  ByteRuns a;
  a.AppendLiteral(Slice(std::string_view("abc")));
  a.AppendZeros(3);
  ByteRuns b;
  b.AppendLiteral(Slice(std::string_view("xyz")));
  a.Append(b);
  auto bytes = a.ToBytes();
  std::string expected = "abc" + std::string(3, '\0') + "xyz";
  EXPECT_EQ(std::string(bytes.begin(), bytes.end()), expected);
}

TEST(ByteRunsTest, SplitPrefixExactBoundary) {
  ByteRuns runs;
  runs.AppendLiteral(Slice(std::string_view("0123456789")));
  ByteRuns prefix = runs.SplitPrefix(4);
  EXPECT_EQ(prefix.size(), 4u);
  EXPECT_EQ(runs.size(), 6u);
  auto p = prefix.ToBytes();
  auto r = runs.ToBytes();
  EXPECT_EQ(std::string(p.begin(), p.end()), "0123");
  EXPECT_EQ(std::string(r.begin(), r.end()), "456789");
}

TEST(ByteRunsTest, SplitPrefixInsideZeroRun) {
  ByteRuns runs;
  runs.AppendLiteral(Slice(std::string_view("ab")));
  runs.AppendZeros(10);
  runs.AppendLiteral(Slice(std::string_view("cd")));
  ByteRuns prefix = runs.SplitPrefix(7);
  EXPECT_EQ(prefix.size(), 7u);
  EXPECT_EQ(runs.size(), 7u);
  std::string expect_prefix = "ab" + std::string(5, '\0');
  std::string expect_rest = std::string(5, '\0') + "cd";
  auto p = prefix.ToBytes();
  auto r = runs.ToBytes();
  EXPECT_EQ(std::string(p.begin(), p.end()), expect_prefix);
  EXPECT_EQ(std::string(r.begin(), r.end()), expect_rest);
}

TEST(ByteRunsTest, SplitPrefixZeroAndFull) {
  ByteRuns runs;
  runs.AppendLiteral(Slice(std::string_view("xy")));
  ByteRuns empty = runs.SplitPrefix(0);
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(runs.size(), 2u);
  ByteRuns all = runs.SplitPrefix(2);
  EXPECT_EQ(all.size(), 2u);
  EXPECT_TRUE(runs.empty());
}

TEST(ByteRunsTest, ClearResets) {
  ByteRuns runs;
  runs.AppendLiteral(Slice(std::string_view("abc")));
  runs.AppendZeros(10);
  runs.Clear();
  EXPECT_TRUE(runs.empty());
  EXPECT_EQ(runs.physical_size(), 0u);
}

// Property test: random sequences of literal/zero appends and splits keep
// content identical to a reference std::string model.
class ByteRunsPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ByteRunsPropertyTest, MatchesReferenceModel) {
  Rng rng(GetParam());
  ByteRuns runs;
  std::string model;
  for (int step = 0; step < 200; ++step) {
    int op = static_cast<int>(rng.Uniform(3));
    if (op == 0) {
      std::string data = MakeData(rng.Uniform(300) + 1, rng.Next());
      runs.AppendLiteral(Slice(data));
      model += data;
    } else if (op == 1) {
      uint64_t n = rng.Uniform(500) + 1;
      runs.AppendZeros(n);
      model += std::string(n, '\0');
    } else if (!model.empty()) {
      uint64_t n = rng.Uniform(model.size() + 1);
      ByteRuns prefix = runs.SplitPrefix(n);
      auto p = prefix.ToBytes();
      EXPECT_EQ(std::string(p.begin(), p.end()), model.substr(0, n));
      model = model.substr(n);
    }
    ASSERT_EQ(runs.size(), model.size());
  }
  auto bytes = runs.ToBytes();
  EXPECT_EQ(std::string(bytes.begin(), bytes.end()), model);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ByteRunsPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ---- zero-copy plane: copy-on-write, aliasing, accounting -----------------

std::string AsString(const ByteRuns& runs) {
  auto bytes = runs.ToBytes();
  return std::string(bytes.begin(), bytes.end());
}

TEST(ByteRunsCowTest, CopiesNeverAlias) {
  ByteRuns a;
  std::string data = MakeData(4096, 11);
  a.AppendLiteral(Slice(data));
  ByteRuns b = a;  // shares the buffer
  b.CorruptByte(100);
  std::string b_expected = data;
  b_expected[100] = static_cast<char>(b_expected[100] ^ 0xFF);
  EXPECT_EQ(AsString(a), data) << "mutating a copy changed the original";
  EXPECT_EQ(AsString(b), b_expected);
  a.TransformLiterals([](uint64_t, uint8_t* p, uint64_t n) {
    for (uint64_t i = 0; i < n; ++i) p[i] ^= 0x5a;
  });
  EXPECT_EQ(AsString(b), b_expected)
      << "transforming the original changed the copy";
}

TEST(ByteRunsCowTest, SubRangeIsStableAgainstParentMutation) {
  ByteRuns parent;
  std::string data = MakeData(1000, 13);
  parent.AppendLiteral(Slice(data));
  ByteRuns view = parent.SubRange(200, 300);
  EXPECT_EQ(AsString(view), data.substr(200, 300));
  parent.CorruptByte(250);  // inside the viewed range
  EXPECT_EQ(AsString(view), data.substr(200, 300))
      << "corrupting the parent changed an existing sub-range view";
  std::string parent_expected = data;
  parent_expected[250] = static_cast<char>(parent_expected[250] ^ 0xFF);
  view.CorruptByte(0);  // view offset 0 aliases parent offset 200
  EXPECT_EQ(AsString(parent), parent_expected)
      << "corrupting a view leaked into the parent";
}

TEST(ByteRunsCowTest, SplitHalvesShareButNeverAlias) {
  ByteRuns rest;
  std::string data = MakeData(1000, 17);
  rest.AppendLiteral(Slice(data));
  ByteRuns prefix = rest.SplitPrefix(400);  // cuts the single run in two
  prefix.CorruptByte(399);
  EXPECT_EQ(AsString(rest), data.substr(400))
      << "corrupting the prefix changed the remainder";
  rest.CorruptByte(0);
  EXPECT_NE(AsString(rest), data.substr(400));
  std::string p = AsString(prefix);
  EXPECT_EQ(p.substr(0, 399), data.substr(0, 399));
}

TEST(ByteRunsCowTest, AppendSharesWithoutAliasing) {
  ByteRuns src;
  std::string data = MakeData(500, 19);
  src.AppendLiteral(Slice(data));
  ByteRuns dst;
  dst.AppendZeros(8);
  dst.Append(src);
  dst.CorruptByte(8);  // first shared byte
  EXPECT_EQ(AsString(src), data) << "mutating the appender changed the source";
}

TEST(ByteRunsCowTest, SelfAppendDoublesContent) {
  ByteRuns runs;
  runs.AppendLiteral(Slice(std::string_view("abc")));
  runs.AppendZeros(2);
  runs.Append(runs);
  std::string once = "abc" + std::string(2, '\0');
  EXPECT_EQ(AsString(runs), once + once);
}

TEST(ByteRunsCowTest, AppendAfterCopyGrowsOnlyOneHandle) {
  // AppendLiteral may grow a still-shared buffer in place; the appended
  // bytes are beyond the copy's view, so the copy must not see them.
  ByteRuns a;
  a.AppendLiteral(Slice(std::string_view("base")));
  ByteRuns b = a;
  a.AppendLiteral(Slice(std::string_view("-more")));
  b.AppendLiteral(Slice(std::string_view("-other")));
  EXPECT_EQ(AsString(a), "base-more");
  EXPECT_EQ(AsString(b), "base-other");
}

TEST(ByteRunsCowTest, PhysicalSizeCountsPerHandleViews) {
  ByteRuns a;
  a.AppendLiteral(Slice(MakeData(100, 23)));
  a.AppendZeros(50);
  EXPECT_EQ(a.physical_size(), 100u);
  ByteRuns b = a;  // shares: each handle still reports its own view
  EXPECT_EQ(b.physical_size(), 100u);
  ByteRuns view = a.SubRange(10, 60);
  EXPECT_EQ(view.physical_size(), 60u);
  EXPECT_EQ(a.physical_size(), 100u);
  ByteRuns prefix = a.SplitPrefix(40);
  EXPECT_EQ(prefix.physical_size(), 40u);
  EXPECT_EQ(a.physical_size(), 60u);
  a.Clear();
  EXPECT_EQ(a.physical_size(), 0u);
  EXPECT_EQ(b.physical_size(), 100u);
}

TEST(ByteRunsCowTest, ChecksumMemoSurvivesSharingAndInvalidatesOnMutate) {
  ByteRuns a;
  std::string data = MakeData(10000, 29);
  a.AppendLiteral(Slice(data));
  a.AppendZeros(5000);
  uint64_t fresh = a.Checksum64();
  EXPECT_EQ(a.Checksum64(), fresh);  // memoized path
  ByteRuns b = a;                    // memo rides along
  EXPECT_EQ(b.Checksum64(), fresh);
  b.CorruptByte(1);
  EXPECT_NE(b.Checksum64(), fresh) << "mutation did not invalidate the memo";
  EXPECT_EQ(a.Checksum64(), fresh) << "mutating a copy dirtied the original";
  b.CorruptByte(1);  // flip back: content equality restores the digest
  EXPECT_EQ(b.Checksum64(), fresh);
  // The memoized digest always equals the from-scratch reference.
  auto bytes = a.ToBytes();
  EXPECT_EQ(a.Checksum64(),
            Checksum::Of(Slice(bytes.data(), bytes.size())));
}

// Property test: a web of handles derived from each other via every
// zero-copy operation must each match an independent reference model —
// sharing is never observable through content, size, or checksum. The
// model carries a per-byte literal mask because TransformLiterals visits
// literal bytes that happen to be zero but never visits zero runs.
class ByteRunsCowPropertyTest : public ::testing::TestWithParam<uint64_t> {};

struct RefModel {
  std::string bytes;
  std::string mask;  // '1' literal byte, '0' zero-run byte
};

TEST_P(ByteRunsCowPropertyTest, HandlesMatchIndependentModels) {
  Rng rng(GetParam());
  std::vector<ByteRuns> handles(1);
  std::vector<RefModel> models(1);
  // The loop body holds references into these vectors across push_backs
  // (capped at 12 elements), so pin the storage now.
  handles.reserve(16);
  models.reserve(16);
  for (int step = 0; step < 300; ++step) {
    size_t i = static_cast<size_t>(rng.Uniform(handles.size()));
    ByteRuns& h = handles[i];
    RefModel& m = models[i];
    switch (rng.Uniform(7)) {
      case 0: {
        std::string data = MakeData(rng.Uniform(200) + 1, rng.Next());
        h.AppendLiteral(Slice(data));
        m.bytes += data;
        m.mask += std::string(data.size(), '1');
        break;
      }
      case 1: {
        uint64_t n = rng.Uniform(300) + 1;
        h.AppendZeros(n);
        m.bytes += std::string(n, '\0');
        m.mask += std::string(n, '0');
        break;
      }
      case 2: {  // copy: new independent handle sharing every buffer
        if (handles.size() < 12) {
          handles.push_back(h);
          models.push_back(m);
        }
        break;
      }
      case 3: {  // sub-range view as a new handle
        if (!m.bytes.empty() && handles.size() < 12) {
          uint64_t off = rng.Uniform(m.bytes.size());
          uint64_t n = rng.Uniform(m.bytes.size() - off) + 1;
          handles.push_back(h.SubRange(off, n));
          models.push_back(
              RefModel{m.bytes.substr(off, n), m.mask.substr(off, n)});
        }
        break;
      }
      case 4: {  // split; keep both halves
        if (!m.bytes.empty() && handles.size() < 12) {
          uint64_t n = rng.Uniform(m.bytes.size() + 1);
          handles.push_back(h.SplitPrefix(n));
          models.push_back(
              RefModel{m.bytes.substr(0, n), m.mask.substr(0, n)});
          m.bytes = m.bytes.substr(n);
          m.mask = m.mask.substr(n);
        }
        break;
      }
      case 5: {
        if (!m.bytes.empty()) {
          uint64_t off = rng.Uniform(m.bytes.size());
          h.CorruptByte(off);
          m.bytes[off] = static_cast<char>(m.bytes[off] ^ 0xFF);
          m.mask[off] = '1';  // a corrupted zero becomes a literal byte
        }
        break;
      }
      case 6: {
        uint8_t key = static_cast<uint8_t>(rng.Uniform(256));
        h.TransformLiterals([key](uint64_t, uint8_t* p, uint64_t n) {
          for (uint64_t k = 0; k < n; ++k) p[k] ^= key;
        });
        for (size_t k = 0; k < m.bytes.size(); ++k) {
          if (m.mask[k] == '1') {
            m.bytes[k] = static_cast<char>(m.bytes[k] ^ key);
          }
        }
        break;
      }
    }
    ASSERT_EQ(h.size(), m.bytes.size());
  }
  for (size_t i = 0; i < handles.size(); ++i) {
    SCOPED_TRACE("handle " + std::to_string(i));
    EXPECT_EQ(AsString(handles[i]), models[i].bytes);
    EXPECT_EQ(handles[i].Checksum64(),
              Checksum::Of(Slice(models[i].bytes)));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ByteRunsCowPropertyTest,
                         ::testing::Values(31, 32, 33, 34, 35, 36));

TEST(ChecksumTest, ZerosMatchLiteralZeros) {
  std::string zeros(1000, '\0');
  Checksum a;
  a.Update(Slice(zeros));
  Checksum b;
  b.UpdateZeros(1000);
  EXPECT_EQ(a.digest(), b.digest());
}

TEST(ChecksumTest, OrderSensitive) {
  EXPECT_NE(Checksum::Of(Slice(std::string_view("ab"))),
            Checksum::Of(Slice(std::string_view("ba"))));
}

}  // namespace
}  // namespace spongefiles
