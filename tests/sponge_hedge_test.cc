// Hedged remote reads under slow-server gray faults: a server that answers
// every RPC, just slowly (overload, GC pauses), used to ride the retry
// ladder straight into the circuit breaker — three timed-out reads ejected
// the server and the chunk was declared lost, forcing a whole task retry.
// With hedging enabled the client instead duplicates the read after the
// server's observed latency tail and takes whichever copy settles first,
// so a slow-but-alive server never trips the breaker and a delay spike
// that clears mid-read is absorbed by the hedge.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "cluster/cluster.h"
#include "cluster/dfs.h"
#include "common/checksum.h"
#include "common/random.h"
#include "common/units.h"
#include "obs/metrics.h"
#include "sim/engine.h"
#include "sponge/failure.h"
#include "sponge/sponge_env.h"
#include "sponge/sponge_file.h"

namespace spongefiles::sponge {
namespace {

struct HedgeCounters {
  uint64_t trips;
  uint64_t timeouts;
  uint64_t issued;
  uint64_t won;

  static HedgeCounters Snapshot() {
    obs::Registry& registry = obs::Registry::Default();
    return {
        registry.counter("sponge.rpc.breaker", {{"event", "trip"}})->value(),
        registry.counter("sponge.rpc.timeouts")->value(),
        registry.counter("sponge.read.hedge.issued")->value(),
        registry.counter("sponge.read.hedge.won")->value(),
    };
  }
};

// A 4-node rack with node 0's pool pre-filled so every chunk this test
// writes lands in *remote* memory — the only path hedged reads cover.
struct HedgeFixture {
  sim::Engine engine;
  std::unique_ptr<cluster::Cluster> cluster_;
  std::unique_ptr<cluster::Dfs> dfs;
  std::unique_ptr<SpongeEnv> env;
  TaskContext task;

  explicit HedgeFixture(SpongeConfig config) {
    cluster::ClusterConfig cc;
    cc.num_nodes = 4;
    cc.node.sponge_memory = MiB(4);
    cluster_ = std::make_unique<cluster::Cluster>(&engine, cc);
    dfs = std::make_unique<cluster::Dfs>(cluster_.get());
    env = std::make_unique<SpongeEnv>(cluster_.get(), dfs.get(), config);
    task = env->StartTask(0);
    for (int i = 0; i < 4; ++i) {
      (void)env->server(0).pool().Allocate(ChunkOwner{999, 0});
    }
    auto prime = [](MemoryTracker* tracker) -> sim::Task<> {
      co_await tracker->PollOnce();
    };
    engine.Spawn(prime(&env->tracker()));
    engine.Run();
  }

  // The remote server the written chunks landed on (affinity packs them
  // onto one peer).
  size_t RemoteHost(uint64_t writer_task_id) {
    for (size_t n = 1; n < cluster_->size(); ++n) {
      for (const auto& [handle, owner] :
           env->server(n).pool().AllocatedChunks()) {
        if (owner.task_id == writer_task_id) return n;
      }
    }
    ADD_FAILURE() << "no remote chunks found";
    return 1;
  }
};

std::string RandomData(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::string out(n, '\0');
  for (auto& c : out) c = static_cast<char>(rng.Uniform(256));
  return out;
}

// Writes `data` through `file`, closes it, and returns the node hosting
// the remote chunks.
size_t WriteRemote(HedgeFixture* f, SpongeFile* file,
                   const std::string& data) {
  Status status;
  auto write = [&]() -> sim::Task<> {
    status = co_await file->AppendBytes(Slice(data));
    if (status.ok()) status = co_await file->Close();
  };
  f->engine.Spawn(write());
  f->engine.Run();
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_GT(file->stats().chunks_remote_memory, 0u);
  return f->RemoteHost(f->task.task_id);
}

struct ReadBack {
  Status status;
  uint64_t bytes = 0;
  uint64_t checksum = 0;
};

ReadBack ReadAll(HedgeFixture* f, SpongeFile* file) {
  ReadBack result;
  auto read = [&]() -> sim::Task<> {
    Checksum sum;
    while (true) {
      auto chunk = co_await file->ReadNext();
      if (!chunk.ok()) {
        result.status = chunk.status();
        co_return;
      }
      if (chunk->empty()) break;
      auto bytes = chunk->ToBytes();
      sum.Update(Slice(bytes));
      result.bytes += bytes.size();
    }
    result.checksum = sum.digest();
  };
  f->engine.Spawn(read());
  f->engine.Run();
  return result;
}

TEST(SpongeHedgeTest, SlowServerDoesNotTripBreakerWithHedging) {
  // The remote host answers every read 800 ms late — past the 500 ms RPC
  // deadline, so the hardened path would time out, retry, and eject it.
  // The hedged path waits the reads out (they are slow, not dead): the
  // file reads back intact, zero timeouts, zero breaker trips.
  SpongeConfig config;
  config.rpc.hedge_reads = true;
  HedgeFixture f(config);
  SpongeFile file(f.env.get(), &f.task, "slow");
  std::string data = RandomData(4 * MiB(1), 7);
  size_t host = WriteRemote(&f, &file, data);

  FailureInjector injector(f.env.get(), 1);
  injector.ScheduleRpcDelay(host, f.engine.now(), Millis(800), Seconds(30));

  HedgeCounters before = HedgeCounters::Snapshot();
  ReadBack got = ReadAll(&f, &file);
  HedgeCounters after = HedgeCounters::Snapshot();

  ASSERT_TRUE(got.status.ok()) << got.status.ToString();
  EXPECT_EQ(got.bytes, data.size());
  EXPECT_EQ(got.checksum, Checksum::Of(Slice(data)));
  EXPECT_EQ(after.trips - before.trips, 0u);
  EXPECT_EQ(after.timeouts - before.timeouts, 0u);
  // Each 800 ms read sailed past the hedge delay, so duplicates went out
  // (to the same slow server, so the primaries still won the races).
  EXPECT_GT(after.issued - before.issued, 0u);
}

TEST(SpongeHedgeTest, SlowServerTripsBreakerWithoutHedging) {
  // Control for the test above: the identical fault on the hardened
  // (non-hedged) path rides deadline -> retry -> breaker, and the read
  // comes back UNAVAILABLE (chunk lost; the framework's task retry is
  // what recovers it).
  SpongeConfig config;
  config.rpc.hedge_reads = false;
  HedgeFixture f(config);
  SpongeFile file(f.env.get(), &f.task, "slow");
  std::string data = RandomData(4 * MiB(1), 7);
  size_t host = WriteRemote(&f, &file, data);

  FailureInjector injector(f.env.get(), 1);
  injector.ScheduleRpcDelay(host, f.engine.now(), Millis(800), Seconds(30));

  HedgeCounters before = HedgeCounters::Snapshot();
  ReadBack got = ReadAll(&f, &file);
  HedgeCounters after = HedgeCounters::Snapshot();

  EXPECT_FALSE(got.status.ok());
  EXPECT_EQ(got.status.code(), StatusCode::kUnavailable)
      << got.status.ToString();
  EXPECT_GT(after.trips - before.trips, 0u);
  EXPECT_EQ(after.issued - before.issued, 0u);
}

TEST(SpongeHedgeTest, HedgeWinsWhenDelaySpikeClears) {
  // A 100 ms delay spike of 1 s per RPC: the first read is issued inside
  // the window and crawls, but its hedge fires at the 150 ms floor —
  // after the spike has cleared — and settles first.
  SpongeConfig config;
  config.rpc.hedge_reads = true;
  config.rpc.hedge_min_delay = Millis(150);
  HedgeFixture f(config);
  SpongeFile file(f.env.get(), &f.task, "spike");
  std::string data = RandomData(4 * MiB(1), 11);
  size_t host = WriteRemote(&f, &file, data);

  FailureInjector injector(f.env.get(), 1);
  injector.ScheduleRpcDelay(host, f.engine.now(), Seconds(1), Millis(100));

  HedgeCounters before = HedgeCounters::Snapshot();
  ReadBack got = ReadAll(&f, &file);
  HedgeCounters after = HedgeCounters::Snapshot();

  ASSERT_TRUE(got.status.ok()) << got.status.ToString();
  EXPECT_EQ(got.checksum, Checksum::Of(Slice(data)));
  EXPECT_GT(after.issued - before.issued, 0u);
  EXPECT_GT(after.won - before.won, 0u);
  EXPECT_EQ(after.trips - before.trips, 0u);
}

}  // namespace
}  // namespace spongefiles::sponge
