#include "sim/sync.h"

#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "sim/engine.h"
#include "sim/task.h"

namespace spongefiles::sim {
namespace {

Task<> Waiter(Event* event, std::vector<int>* log, int id) {
  co_await event->Wait();
  log->push_back(id);
}

Task<> Setter(Engine* engine, Event* event, Duration d) {
  co_await engine->Delay(d);
  event->Set();
}

TEST(EventTest, WaitersResumeOnSet) {
  Engine engine;
  Event event(&engine);
  std::vector<int> log;
  engine.Spawn(Waiter(&event, &log, 1));
  engine.Spawn(Waiter(&event, &log, 2));
  engine.Spawn(Setter(&engine, &event, Millis(10)));
  engine.Run();
  EXPECT_EQ(engine.now(), Millis(10));
  EXPECT_EQ(log, std::vector<int>({1, 2}));
  EXPECT_TRUE(event.is_set());
}

TEST(EventTest, WaitAfterSetCompletesImmediately) {
  Engine engine;
  Event event(&engine);
  event.Set();
  std::vector<int> log;
  engine.Spawn(Waiter(&event, &log, 7));
  engine.Run();
  EXPECT_EQ(log, std::vector<int>({7}));
  EXPECT_EQ(engine.now(), 0);
}

Task<> HoldSemaphore(Engine* engine, Semaphore* sem, std::vector<int>* log,
                     int id, Duration hold) {
  co_await sem->Acquire();
  log->push_back(id);
  co_await engine->Delay(hold);
  sem->Release();
}

TEST(SemaphoreTest, LimitsConcurrency) {
  Engine engine;
  Semaphore sem(&engine, 1);
  std::vector<int> log;
  engine.Spawn(HoldSemaphore(&engine, &sem, &log, 1, Millis(10)));
  engine.Spawn(HoldSemaphore(&engine, &sem, &log, 2, Millis(10)));
  engine.Spawn(HoldSemaphore(&engine, &sem, &log, 3, Millis(10)));
  engine.Run();
  // Serialized: total time 30ms, FIFO order.
  EXPECT_EQ(engine.now(), Millis(30));
  EXPECT_EQ(log, std::vector<int>({1, 2, 3}));
}

TEST(SemaphoreTest, MultiplePermitsAllowParallelism) {
  Engine engine;
  Semaphore sem(&engine, 2);
  std::vector<int> log;
  for (int i = 0; i < 4; ++i) {
    engine.Spawn(HoldSemaphore(&engine, &sem, &log, i, Millis(10)));
  }
  engine.Run();
  // Two at a time: 20ms total.
  EXPECT_EQ(engine.now(), Millis(20));
  EXPECT_EQ(log.size(), 4u);
}

TEST(SemaphoreTest, FifoHandoffNoBarging) {
  Engine engine;
  Semaphore sem(&engine, 1);
  std::vector<int> log;
  engine.Spawn(HoldSemaphore(&engine, &sem, &log, 1, Millis(10)));
  engine.Spawn(HoldSemaphore(&engine, &sem, &log, 2, Millis(1)));
  // Task 3 arrives later but before task 2 finishes; must run after 2.
  engine.SpawnAt(Millis(5), HoldSemaphore(&engine, &sem, &log, 3, Millis(1)));
  engine.Run();
  EXPECT_EQ(log, std::vector<int>({1, 2, 3}));
}

Task<> LockUnlock(Engine* engine, Mutex* mu, int* counter, int* max_inside) {
  co_await mu->Lock();
  ++*counter;
  *max_inside = std::max(*max_inside, *counter);
  // lint: lock-ok(suspends in the critical section to prove exclusion holds)
  co_await engine->Delay(Millis(1));
  --*counter;
  mu->Unlock();
}

TEST(MutexTest, MutualExclusion) {
  Engine engine;
  Mutex mu(&engine);
  int counter = 0;
  int max_inside = 0;
  for (int i = 0; i < 10; ++i) {
    engine.Spawn(LockUnlock(&engine, &mu, &counter, &max_inside));
  }
  engine.Run();
  EXPECT_EQ(max_inside, 1);
  EXPECT_EQ(counter, 0);
}

Task<> Producer(Engine* engine, Channel<int>* ch, int n) {
  for (int i = 0; i < n; ++i) {
    co_await engine->Delay(Millis(1));
    ch->Push(i);
  }
  ch->Close();
}

Task<> Consumer(Channel<int>* ch, std::vector<int>* got) {
  while (true) {
    std::optional<int> item = co_await ch->Pop();
    if (!item.has_value()) break;
    got->push_back(*item);
  }
}

TEST(ChannelTest, ProducerConsumerDeliversAllInOrder) {
  Engine engine;
  Channel<int> ch(&engine);
  std::vector<int> got;
  engine.Spawn(Consumer(&ch, &got));
  engine.Spawn(Producer(&engine, &ch, 100));
  engine.Run();
  ASSERT_EQ(got.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(got[i], i);
}

TEST(ChannelTest, MultipleConsumersShareItems) {
  Engine engine;
  Channel<int> ch(&engine);
  std::vector<int> a;
  std::vector<int> b;
  engine.Spawn(Consumer(&ch, &a));
  engine.Spawn(Consumer(&ch, &b));
  engine.Spawn(Producer(&engine, &ch, 50));
  engine.Run();
  EXPECT_EQ(a.size() + b.size(), 50u);
  // No item lost or duplicated.
  std::vector<int> all = a;
  all.insert(all.end(), b.begin(), b.end());
  std::sort(all.begin(), all.end());
  for (int i = 0; i < 50; ++i) EXPECT_EQ(all[i], i);
}

TEST(ChannelTest, PopDrainsBufferedItemsAfterClose) {
  Engine engine;
  Channel<std::string> ch(&engine);
  ch.Push("a");
  ch.Push("b");
  ch.Close();
  std::vector<std::string> got;
  auto consume = [](Channel<std::string>* c,
                    std::vector<std::string>* out) -> Task<> {
    while (true) {
      auto item = co_await c->Pop();
      if (!item) break;
      out->push_back(*item);
    }
  };
  engine.Spawn(consume(&ch, &got));
  engine.Run();
  EXPECT_EQ(got, std::vector<std::string>({"a", "b"}));
}

Task<> WgWorker(Engine* engine, WaitGroup* wg, Duration d, int* done) {
  co_await engine->Delay(d);
  ++*done;
  wg->Done();
}

Task<> WgWaiter(WaitGroup* wg, int* done, int* observed) {
  co_await wg->Wait();
  *observed = *done;
}

TEST(WaitGroupTest, WaitBlocksUntilAllDone) {
  Engine engine;
  WaitGroup wg(&engine);
  int done = 0;
  int observed = -1;
  wg.Add(3);
  engine.Spawn(WgWaiter(&wg, &done, &observed));
  engine.Spawn(WgWorker(&engine, &wg, Millis(5), &done));
  engine.Spawn(WgWorker(&engine, &wg, Millis(10), &done));
  engine.Spawn(WgWorker(&engine, &wg, Millis(15), &done));
  engine.Run();
  EXPECT_EQ(observed, 3);
  EXPECT_EQ(engine.now(), Millis(15));
}

}  // namespace
}  // namespace spongefiles::sim
