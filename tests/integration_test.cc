#include <gtest/gtest.h>

#include <memory>

#include "cluster/cluster.h"
#include "cluster/dfs.h"
#include "common/checksum.h"
#include "common/random.h"
#include "common/units.h"
#include "mapred/job_tracker.h"
#include "sim/engine.h"
#include "sponge/failure.h"
#include "sponge/sponge_env.h"
#include "sponge/sponge_file.h"
#include "workload/testbed.h"

namespace spongefiles {
namespace {

// --- ByteRuns::SubRange (used by rewindable spill files) ---

TEST(SubRangeTest, PreservesContentAndZeroRuns) {
  ByteRuns runs;
  runs.AppendLiteral(Slice(std::string_view("header")));
  runs.AppendZeros(1000);
  runs.AppendLiteral(Slice(std::string_view("trailer")));
  ByteRuns middle = runs.SubRange(3, 1005);
  EXPECT_EQ(middle.size(), 1005u);
  // Zero runs stay unmaterialized: physical size is only the literals.
  EXPECT_EQ(middle.physical_size(), 3u + 2u);
  auto expected = runs.ToBytes();
  auto got = middle.ToBytes();
  EXPECT_TRUE(std::equal(got.begin(), got.end(), expected.begin() + 3));
}

TEST(SubRangeTest, FullAndEmptyRanges) {
  ByteRuns runs;
  runs.AppendLiteral(Slice(std::string_view("abc")));
  EXPECT_EQ(runs.SubRange(0, 3).ToBytes(), runs.ToBytes());
  EXPECT_TRUE(runs.SubRange(1, 0).empty());
  EXPECT_TRUE(runs.SubRange(3, 0).empty());
}

class SubRangePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SubRangePropertyTest, MatchesMaterializedSlice) {
  Rng rng(GetParam());
  ByteRuns runs;
  std::string model;
  for (int i = 0; i < 50; ++i) {
    if (rng.Bernoulli(0.5)) {
      std::string data(rng.Uniform(100) + 1, static_cast<char>(
                                                 'a' + rng.Uniform(26)));
      runs.AppendLiteral(Slice(data));
      model += data;
    } else {
      uint64_t n = rng.Uniform(200) + 1;
      runs.AppendZeros(n);
      model += std::string(n, '\0');
    }
  }
  for (int i = 0; i < 100; ++i) {
    uint64_t offset = rng.Uniform(model.size());
    uint64_t n = rng.Uniform(model.size() - offset + 1);
    auto got = runs.SubRange(offset, n).ToBytes();
    EXPECT_EQ(std::string(got.begin(), got.end()),
              model.substr(offset, n));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SubRangePropertyTest,
                         ::testing::Values(11, 22, 33, 44));

// --- SpongeFile round-trip across configuration space ---

struct RoundTripCase {
  bool direct_local;
  bool prefetch;
  bool async_write;
  bool affinity;
  uint64_t chunk_size;
  uint64_t sponge_per_node;
};

class SpongeRoundTripTest
    : public ::testing::TestWithParam<RoundTripCase> {};

TEST_P(SpongeRoundTripTest, ChecksumSurvivesEveryConfig) {
  const RoundTripCase& param = GetParam();
  sim::Engine engine;
  cluster::ClusterConfig cc;
  cc.num_nodes = 5;
  cc.node.sponge_memory = param.sponge_per_node;
  cluster::Cluster cluster(&engine, cc);
  cluster::Dfs dfs(&cluster);
  sponge::SpongeConfig config;
  config.direct_local_access = param.direct_local;
  config.prefetch = param.prefetch;
  config.async_write = param.async_write;
  config.affinity = param.affinity;
  config.chunk_size = param.chunk_size;
  sponge::SpongeEnv env(&cluster, &dfs, config);
  auto prime = [](sponge::MemoryTracker* t) -> sim::Task<> {
    co_await t->PollOnce();
  };
  engine.Spawn(prime(&env.tracker()));
  engine.Run();

  sponge::TaskContext task = env.StartTask(0);
  sponge::SpongeFile file(&env, &task, "roundtrip");
  Rng rng(99);
  Checksum written;
  Status status;
  uint64_t written_bytes = 0;
  uint64_t read_bytes = 0;
  Checksum read_back;
  auto run = [&]() -> sim::Task<> {
    // ~7.3 MB in odd-sized bursts: spans local + remote, partial chunks.
    for (int i = 0; i < 25; ++i) {
      std::string burst(123456 + rng.Uniform(234567), '\0');
      for (auto& c : burst) c = static_cast<char>(rng.Uniform(256));
      written.Update(Slice(burst));
      written_bytes += burst.size();
      status = co_await file.AppendBytes(Slice(burst));
      if (!status.ok()) co_return;
    }
    status = co_await file.Close();
    if (!status.ok()) co_return;
    while (true) {
      auto chunk = co_await file.ReadNext();
      if (!chunk.ok()) {
        status = chunk.status();
        co_return;
      }
      if (chunk->empty()) break;
      auto bytes = chunk->ToBytes();
      read_back.Update(Slice(bytes));
      read_bytes += bytes.size();
    }
    co_await file.Delete();
  };
  engine.Spawn(run());
  engine.Run();
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(read_bytes, written_bytes);
  EXPECT_EQ(read_back.digest(), written.digest());
  // Nothing leaks anywhere in the cluster.
  for (size_t n = 0; n < cluster.size(); ++n) {
    EXPECT_TRUE(env.server(n).pool().AllocatedChunks().empty());
    EXPECT_EQ(cluster.node(n).fs().used(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, SpongeRoundTripTest,
    ::testing::Values(
        RoundTripCase{true, true, true, true, MiB(1), MiB(4)},
        RoundTripCase{false, true, true, true, MiB(1), MiB(4)},
        RoundTripCase{true, false, false, true, MiB(1), MiB(4)},
        RoundTripCase{true, true, false, false, MiB(1), MiB(4)},
        RoundTripCase{true, false, true, true, KiB(256), MiB(2)},
        RoundTripCase{true, true, true, true, MiB(4), MiB(8)},
        RoundTripCase{true, true, true, true, MiB(1), 0},     // all disk
        RoundTripCase{true, true, true, true, KiB(64), MiB(1)}));

// --- Simulation determinism ---

Duration RunSeededJob(uint64_t seed) {
  workload::TestbedConfig bed_config;
  workload::Testbed bed(bed_config);
  workload::WebDatasetConfig web_config;
  web_config.total_bytes = MiB(512);
  web_config.seed = seed;
  workload::WebDataset web(&bed.dfs(), "web", web_config);
  auto result = bed.RunJob(workload::MakeAnchortextJob(
      &web, mapred::SpillMode::kSponge));
  EXPECT_TRUE(result.ok());
  return result.ok() ? result->runtime : 0;
}

TEST(DeterminismTest, IdenticalSeedsIdenticalRuntimes) {
  Duration first = RunSeededJob(7);
  Duration second = RunSeededJob(7);
  EXPECT_EQ(first, second);
}

TEST(DeterminismTest, DifferentSeedsDifferentData) {
  Duration first = RunSeededJob(7);
  Duration other = RunSeededJob(8);
  // Different data, almost surely different timing.
  EXPECT_NE(first, other);
}

// --- Failure + GC integration ---

TEST(FailureIntegrationTest, CrashedAttemptChunksAreGarbageCollected) {
  // A task spills to remote memory, then dies without deleting. The
  // remote server's GC sweep must reclaim every chunk.
  sim::Engine engine;
  cluster::ClusterConfig cc;
  cc.num_nodes = 3;
  cc.node.sponge_memory = MiB(2);
  cluster::Cluster cluster(&engine, cc);
  cluster::Dfs dfs(&cluster);
  sponge::SpongeEnv env(&cluster, &dfs, sponge::SpongeConfig{});
  auto prime = [](sponge::MemoryTracker* t) -> sim::Task<> {
    co_await t->PollOnce();
  };
  engine.Spawn(prime(&env.tracker()));
  engine.Run();

  auto task = std::make_unique<sponge::TaskContext>(env.StartTask(0));
  auto file = std::make_unique<sponge::SpongeFile>(&env, task.get(),
                                                   "doomed");
  auto run = [&]() -> sim::Task<> {
    ByteRuns data;
    data.AppendZeros(MiB(5));
    (void)co_await file->Append(std::move(data));
    (void)co_await file->Close();
  };
  engine.Spawn(run());
  engine.Run();
  uint64_t allocated = 0;
  for (size_t n = 0; n < 3; ++n) {
    allocated += env.server(n).pool().AllocatedChunks().size();
  }
  EXPECT_EQ(allocated, 5u);

  // The task dies without cleanup (its file object just goes away).
  env.EndTask(*task);

  uint64_t reclaimed = 0;
  auto sweep = [&]() -> sim::Task<> {
    for (size_t n = 0; n < 3; ++n) {
      reclaimed += co_await env.server(n).GcSweep();
    }
  };
  engine.Spawn(sweep());
  engine.Run();
  EXPECT_EQ(reclaimed, 5u);
  for (size_t n = 0; n < 3; ++n) {
    EXPECT_TRUE(env.server(n).pool().AllocatedChunks().empty());
  }
}

TEST(FailureIntegrationTest, JobSurvivesMidRunNodeCrash) {
  workload::TestbedConfig bed_config;
  bed_config.sponge_memory = MiB(128);
  workload::Testbed bed(bed_config);
  workload::NumbersDatasetConfig data;
  data.count = 50001;
  workload::NumbersDataset numbers(&bed.dfs(), "nums", data);
  sponge::FailureInjector injector(&bed.env(), 3);
  injector.ScheduleCrash(1, Seconds(20), Seconds(5));
  auto result = bed.RunJob(
      workload::MakeMedianJob(&numbers, mapred::SpillMode::kSponge));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->output[0].number, numbers.expected_median());
}

}  // namespace
}  // namespace spongefiles
