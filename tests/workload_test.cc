#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/units.h"
#include "workload/testbed.h"
#include "workload/trace.h"
#include "workload/webdata.h"

namespace spongefiles::workload {
namespace {

// A small dataset keeps these tests fast; the benches run the full 10 GB.
WebDatasetConfig SmallWeb() {
  WebDatasetConfig config;
  config.total_bytes = MiB(256);
  config.record_size = 10 * kKiB;
  return config;
}

TEST(WebDatasetTest, SplitGenerationDeterministic) {
  Testbed bed;
  WebDataset data(&bed.dfs(), "web", SmallWeb());
  auto a = data.GenerateSplit(0);
  auto b = data.GenerateSplit(0);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  auto c = data.GenerateSplit(1);
  EXPECT_FALSE(c.empty());
  EXPECT_FALSE(a[0] == c[0]);
}

TEST(WebDatasetTest, GiantDomainHoldsAboutThirtyPercent) {
  Testbed bed;
  WebDataset data(&bed.dfs(), "web", SmallWeb());
  std::map<std::string, int> domain_counts;
  int total = 0;
  for (size_t s = 0; s < data.num_splits(); ++s) {
    for (const auto& page : data.GenerateSplit(s)) {
      ++domain_counts[page.fields[0]];
      ++total;
    }
  }
  double giant = static_cast<double>(domain_counts[WebDataset::DomainName(0)]) /
                 total;
  EXPECT_GT(giant, 0.25);
  EXPECT_LT(giant, 0.38);
}

TEST(WebDatasetTest, EnglishDominatesLanguages) {
  Testbed bed;
  WebDataset data(&bed.dfs(), "web", SmallWeb());
  int english = 0;
  int total = 0;
  for (const auto& page : data.GenerateSplit(0)) {
    if (page.fields[1] == "english") ++english;
    ++total;
  }
  double fraction = static_cast<double>(english) / total;
  EXPECT_NEAR(fraction, 0.6, 0.08);
}

TEST(WebDatasetTest, RecordShape) {
  Testbed bed;
  WebDatasetConfig config = SmallWeb();
  WebDataset data(&bed.dfs(), "web", config);
  for (const auto& page : data.GenerateSplit(0)) {
    ASSERT_GE(page.fields.size(), 2u + config.terms_per_page);
    EXPECT_EQ(page.size, config.record_size);
    EXPECT_GE(page.number, 0.0);
    EXPECT_LT(page.number, 1.0);
  }
}

TEST(NumbersDatasetTest, ValuesAreAPermutation) {
  Testbed bed;
  NumbersDatasetConfig config;
  config.count = 20001;
  config.record_size = 10 * kKiB;
  NumbersDataset data(&bed.dfs(), "nums", config);
  auto splits = data.Splits();
  std::set<uint64_t> seen;
  for (auto& split : splits) {
    for (const auto& r : split.generate()) {
      EXPECT_TRUE(seen.insert(static_cast<uint64_t>(r.number)).second)
          << "duplicate value " << r.number;
    }
  }
  EXPECT_EQ(seen.size(), config.count);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), config.count - 1);
  EXPECT_EQ(data.expected_median(), 10000);
}

TEST(ScanDatasetTest, SplitsCoverAllBytes) {
  Testbed bed;
  ScanDataset data(&bed.dfs(), "scan", GiB(1) + MiB(3));
  auto splits = data.Splits();
  uint64_t total = 0;
  for (const auto& split : splits) total += split.bytes;
  EXPECT_EQ(total, GiB(1) + MiB(3));
  EXPECT_EQ(splits.size(), 9u);  // 8 full blocks + remainder
}

TEST(TraceTest, TaskInputsSpanManyOrdersOfMagnitude) {
  TraceConfig config;
  config.num_jobs = 3000;
  TraceSynthesizer synth(config);
  auto fig = synth.BuildFigure1();
  ASSERT_FALSE(fig.task_inputs.empty());
  double min = fig.task_inputs.front().value;
  double max = fig.task_inputs.back().value;
  EXPECT_GE(std::log10(max) - std::log10(std::max(min, 1.0)), 6.0);
  // The biggest input approaches the 105 GB cap: bigger than any node.
  EXPECT_GT(max, 50.0 * 1024 * 1024 * 1024);
}

TEST(TraceTest, ManyJobsHighlySkewed) {
  TraceConfig config;
  config.num_jobs = 3000;
  TraceSynthesizer synth(config);
  auto jobs = synth.Generate();
  int beyond = 0;
  int eligible = 0;
  int negative = 0;
  for (const auto& job : jobs) {
    if (job.reduce_input_bytes.size() < 3) continue;
    ++eligible;
    double s = job.skewness();
    if (s > 1 || s < -1) ++beyond;
    if (s < -1) ++negative;
  }
  // Figure 1(b): a big fraction beyond +/-1, with both tails present.
  EXPECT_GT(static_cast<double>(beyond) / eligible, 0.3);
  EXPECT_GT(negative, 0);
}

TEST(TraceTest, CdfsMonotone) {
  TraceSynthesizer synth(TraceConfig{.num_jobs = 500});
  auto fig = synth.BuildFigure1();
  for (const auto* cdf :
       {&fig.task_inputs, &fig.job_average_inputs, &fig.job_skewness}) {
    for (size_t i = 1; i < cdf->size(); ++i) {
      EXPECT_GE((*cdf)[i].fraction, (*cdf)[i - 1].fraction);
      EXPECT_GE((*cdf)[i].value, (*cdf)[i - 1].value);
    }
    EXPECT_DOUBLE_EQ(cdf->back().fraction, 1.0);
  }
}

TEST(TestbedTest, MatchesPaperLayout) {
  Testbed bed;
  EXPECT_EQ(bed.cluster().size(), 30u);
  EXPECT_TRUE(bed.cluster().SameRack(0, 29));
  EXPECT_EQ(bed.cluster().node(0).config().map_slots, 2);
  EXPECT_EQ(bed.cluster().node(0).config().reduce_slots, 1);
  EXPECT_EQ(bed.env().server(0).free_bytes(), GiB(1));
}

TEST(TestbedTest, RunsSmallMedianJobBothModes) {
  for (auto mode : {mapred::SpillMode::kDisk, mapred::SpillMode::kSponge}) {
    Testbed bed;
    NumbersDatasetConfig config;
    config.count = 10001;
    config.record_size = 10 * kKiB;  // ~100 MB: fits without stragglers
    NumbersDataset data(&bed.dfs(), "nums", config);
    auto result = bed.RunJob(MakeMedianJob(&data, mode));
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ASSERT_EQ(result->output.size(), 1u);
    EXPECT_EQ(result->output[0].number, 5000);
    EXPECT_GT(result->runtime, 0);
  }
}

TEST(TestbedTest, BackgroundJobReportsTaskStats) {
  Testbed bed;
  NumbersDatasetConfig config;
  config.count = 5001;
  config.record_size = 10 * kKiB;
  NumbersDataset data(&bed.dfs(), "nums", config);
  ScanDataset scan(&bed.dfs(), "grepdata", GiB(4));
  std::vector<mapred::TaskStats> grep_tasks;
  auto result = bed.RunJob(MakeMedianJob(&data, mapred::SpillMode::kSponge),
                           MakeGrepJob(&scan, nullptr, 2.0), &grep_tasks);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(grep_tasks.size(), 0u);
  for (const auto& stats : grep_tasks) {
    EXPECT_GT(stats.runtime, 0);
  }
}

}  // namespace
}  // namespace spongefiles::workload
