#include "sponge/chunk_pool.h"

#include <gtest/gtest.h>

#include <unordered_map>
#include <unordered_set>

#include "common/units.h"
#include "sim/engine.h"

namespace spongefiles::sponge {
namespace {

ChunkPoolConfig SmallPool() {
  ChunkPoolConfig config;
  config.pool_size = MiB(8);
  config.chunk_size = MiB(1);
  return config;
}

TEST(ChunkPoolTest, CapacityFromConfig) {
  ChunkPool pool(SmallPool());
  EXPECT_EQ(pool.total_chunks(), 8u);
  EXPECT_EQ(pool.free_chunks(), 8u);
  EXPECT_EQ(pool.free_bytes(), MiB(8));
}

TEST(ChunkPoolTest, SegmentsCappedAtTwoGigabytes) {
  // Mirrors the JVM's 2 GB mapped-file limit: a 5 GB pool needs 3 segments.
  ChunkPoolConfig config;
  config.pool_size = GiB(5);
  config.chunk_size = MiB(1);
  ChunkPool pool(config);
  EXPECT_EQ(pool.segments(), 3u);
  EXPECT_EQ(pool.total_chunks(), 5u * 1024);
}

TEST(ChunkPoolTest, AllocateAndFree) {
  ChunkPool pool(SmallPool());
  ChunkOwner owner{42, 3};
  auto handle = pool.Allocate(owner);
  ASSERT_TRUE(handle.ok());
  EXPECT_EQ(pool.free_chunks(), 7u);
  EXPECT_EQ(pool.OwnerOf(*handle)->task_id, 42u);
  ASSERT_TRUE(pool.Free(*handle, owner).ok());
  EXPECT_EQ(pool.free_chunks(), 8u);
}

TEST(ChunkPoolTest, ExhaustionReturnsResourceExhausted) {
  ChunkPool pool(SmallPool());
  ChunkOwner owner{1, 0};
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(pool.Allocate(owner).ok());
  }
  auto overflow = pool.Allocate(owner);
  EXPECT_EQ(overflow.status().code(), StatusCode::kResourceExhausted);
}

TEST(ChunkPoolTest, FreeingMakesChunkReusable) {
  ChunkPool pool(SmallPool());
  ChunkOwner a{1, 0};
  std::vector<ChunkHandle> handles;
  for (int i = 0; i < 8; ++i) handles.push_back(*pool.Allocate(a));
  ASSERT_TRUE(pool.Free(handles[3], a).ok());
  auto fresh = pool.Allocate(ChunkOwner{2, 1});
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(*pool.OwnerOf(*fresh), (ChunkOwner{2, 1}));
}

TEST(ChunkPoolTest, DoubleFreeRejected) {
  ChunkPool pool(SmallPool());
  ChunkOwner owner{7, 0};
  auto handle = *pool.Allocate(owner);
  ASSERT_TRUE(pool.Free(handle, owner).ok());
  EXPECT_EQ(pool.Free(handle, owner).code(), StatusCode::kFailedPrecondition);
}

TEST(ChunkPoolTest, FreeByWrongOwnerRejected) {
  ChunkPool pool(SmallPool());
  auto handle = *pool.Allocate(ChunkOwner{7, 0});
  EXPECT_EQ(pool.Free(handle, ChunkOwner{8, 0}).code(),
            StatusCode::kFailedPrecondition);
  // Same task id from a different node is a different owner.
  EXPECT_EQ(pool.Free(handle, ChunkOwner{7, 1}).code(),
            StatusCode::kFailedPrecondition);
}

TEST(ChunkPoolTest, ZeroOwnerIdRejected) {
  ChunkPool pool(SmallPool());
  EXPECT_EQ(pool.Allocate(ChunkOwner{0, 0}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ChunkPoolTest, DataSurvivesUntilFree) {
  ChunkPool pool(SmallPool());
  ChunkOwner owner{5, 2};
  auto handle = *pool.Allocate(owner);
  ByteRuns* data = pool.chunk_data(handle);
  ASSERT_NE(data, nullptr);
  data->AppendLiteral(Slice(std::string_view("payload")));
  EXPECT_EQ(pool.chunk_data(handle)->size(), 7u);
  ASSERT_TRUE(pool.Free(handle, owner).ok());
  EXPECT_EQ(pool.chunk_data(handle), nullptr);
}

TEST(ChunkPoolTest, AllocatedChunksListsOwners) {
  ChunkPool pool(SmallPool());
  auto h1 = *pool.Allocate(ChunkOwner{1, 0});
  auto h2 = *pool.Allocate(ChunkOwner{2, 4});
  auto chunks = pool.AllocatedChunks();
  ASSERT_EQ(chunks.size(), 2u);
  EXPECT_TRUE((chunks[0].first == h1 && chunks[1].first == h2) ||
              (chunks[0].first == h2 && chunks[1].first == h1));
}

TEST(ChunkPoolTest, ResetFreesEverything) {
  ChunkPool pool(SmallPool());
  for (int i = 0; i < 5; ++i) (void)pool.Allocate(ChunkOwner{1, 0});
  pool.Reset();
  EXPECT_EQ(pool.free_chunks(), 8u);
  EXPECT_TRUE(pool.AllocatedChunks().empty());
}

TEST(ChunkPoolTest, ForceFreeIgnoresOwner) {
  ChunkPool pool(SmallPool());
  auto handle = *pool.Allocate(ChunkOwner{9, 3});
  ASSERT_TRUE(pool.ForceFree(handle).ok());
  EXPECT_EQ(pool.free_chunks(), 8u);
}

// --- tiered allocator (size classes, slabs, lock model) ---

TEST(ChunkPoolTest, SmallAllocationCarvesSlabOnDemand) {
  ChunkPool pool(SmallPool());  // default classes: 64 KiB, 256 KiB
  ChunkOwner owner{3, 0};
  auto handle = pool.Allocate(owner, KiB(10));
  ASSERT_TRUE(handle.ok());
  EXPECT_EQ(handle->level, 1u);
  EXPECT_EQ(pool.slot_bytes(*handle), KiB(64));
  // One bulk chunk now backs the 64 KiB slab...
  EXPECT_EQ(pool.free_chunks(), 7u);
  EXPECT_EQ(pool.slabs_carved(), 1u);
  // ...but its 15 sibling slots are still free, so total free bytes only
  // shrank by one slot.
  EXPECT_EQ(pool.free_bytes(), MiB(8) - KiB(64));
  EXPECT_EQ(pool.frag_bytes(), KiB(64) - KiB(10));
  ASSERT_TRUE(pool.Free(*handle, owner).ok());
  // Last slot freed: the slab dissolves back into a bulk chunk.
  EXPECT_EQ(pool.slabs_released(), 1u);
  EXPECT_EQ(pool.free_chunks(), 8u);
  EXPECT_EQ(pool.free_bytes(), MiB(8));
  EXPECT_EQ(pool.frag_bytes(), 0u);
}

TEST(ChunkPoolTest, SiblingSmallAllocationsShareOneSlab) {
  ChunkPool pool(SmallPool());
  ChunkOwner owner{4, 0};
  std::vector<ChunkHandle> handles;
  for (int i = 0; i < 16; ++i) {  // 1 MiB / 64 KiB = 16 slots per slab
    handles.push_back(*pool.Allocate(owner, KiB(64)));
  }
  EXPECT_EQ(pool.slabs_carved(), 1u);
  EXPECT_EQ(pool.free_chunks(), 7u);
  // The 17th spills into a second slab.
  handles.push_back(*pool.Allocate(owner, KiB(64)));
  EXPECT_EQ(pool.slabs_carved(), 2u);
  EXPECT_EQ(pool.free_chunks(), 6u);
  for (size_t i = 0; i < handles.size(); ++i) {
    ASSERT_TRUE(pool.Free(handles[i], owner).ok());
  }
  EXPECT_EQ(pool.slabs_released(), 2u);
  EXPECT_EQ(pool.free_chunks(), 8u);
}

TEST(ChunkPoolTest, ClassBytesForPicksSmallestFit) {
  ChunkPool pool(SmallPool());
  EXPECT_EQ(pool.class_bytes_for(1), KiB(64));
  EXPECT_EQ(pool.class_bytes_for(KiB(64)), KiB(64));
  EXPECT_EQ(pool.class_bytes_for(KiB(64) + 1), KiB(256));
  EXPECT_EQ(pool.class_bytes_for(KiB(256)), KiB(256));
  EXPECT_EQ(pool.class_bytes_for(KiB(256) + 1), MiB(1));
  EXPECT_EQ(pool.class_bytes_for(0), MiB(1));  // undeclared => bulk
  EXPECT_EQ(pool.class_bytes_for(MiB(1)), MiB(1));
}

TEST(ChunkPoolTest, InvalidSmallClassesAreDropped) {
  ChunkPoolConfig config = SmallPool();
  // 3 does not divide the chunk size; MiB(1)/MiB(2) are not smaller than
  // it. Only the 64 KiB class survives.
  config.small_classes = {3, KiB(64), MiB(1), MiB(2)};
  ChunkPool pool(config);
  EXPECT_EQ(pool.levels(), 2u);
  EXPECT_EQ(pool.level_class_bytes(1), KiB(64));
}

TEST(ChunkPoolTest, SmallRequestFallsUpwardToAnOpenLargerClass) {
  ChunkPool pool(SmallPool());
  ChunkOwner owner{5, 0};
  // Carve a 256 KiB slab, then exhaust every remaining bulk chunk.
  auto big = *pool.Allocate(owner, KiB(100));
  ASSERT_EQ(big.level, 2u);
  while (pool.Allocate(owner).ok()) {
  }
  ASSERT_EQ(pool.free_chunks(), 0u);
  // A 10 KiB request cannot carve a 64 KiB slab (no free bulk chunk), so
  // it falls upward into the open 256 KiB slab.
  auto handle = pool.Allocate(owner, KiB(10));
  ASSERT_TRUE(handle.ok());
  EXPECT_EQ(handle->level, 2u);
  EXPECT_EQ(pool.slot_bytes(*handle), KiB(256));
  EXPECT_EQ(pool.frag_bytes(),
            (KiB(256) - KiB(100)) + (KiB(256) - KiB(10)));
}

TEST(ChunkPoolTest, SmallRequestExhaustsWhenNothingFitsAnywhere) {
  ChunkPool pool(SmallPool());
  ChunkOwner owner{6, 0};
  std::vector<ChunkHandle> bulk;
  while (true) {
    auto handle = pool.Allocate(owner);
    if (!handle.ok()) break;
    bulk.push_back(*handle);
  }
  auto small = pool.Allocate(owner, KiB(10));
  EXPECT_EQ(small.status().code(), StatusCode::kResourceExhausted);
  // Freeing one bulk chunk makes the carve possible again.
  ASSERT_TRUE(pool.Free(bulk.back(), owner).ok());
  auto retry = pool.Allocate(owner, KiB(10));
  ASSERT_TRUE(retry.ok());
  EXPECT_EQ(retry->level, 1u);
}

TEST(ChunkPoolTest, FlatModeHasOneLevelAndIgnoresSizeClasses) {
  ChunkPoolConfig config = SmallPool();
  config.flat = true;
  ChunkPool pool(config);
  EXPECT_EQ(pool.levels(), 1u);
  auto handle = pool.Allocate(ChunkOwner{2, 0}, KiB(10));
  ASSERT_TRUE(handle.ok());
  EXPECT_EQ(handle->level, 0u);  // a whole bulk chunk, as before the tiers
  EXPECT_EQ(pool.slot_bytes(*handle), MiB(1));
  EXPECT_EQ(pool.frag_bytes(), MiB(1) - KiB(10));
}

TEST(ChunkPoolTest, ResetDissolvesSlabsAndClearsAccounting) {
  ChunkPool pool(SmallPool());
  ChunkOwner owner{8, 1};
  (void)pool.Allocate(owner);
  (void)pool.Allocate(owner, KiB(10));
  (void)pool.Allocate(owner, KiB(200));
  pool.Reset();
  EXPECT_EQ(pool.free_chunks(), 8u);
  EXPECT_EQ(pool.free_bytes(), MiB(8));
  EXPECT_EQ(pool.frag_bytes(), 0u);
  EXPECT_EQ(pool.allocated_count(), 0u);
  EXPECT_EQ(pool.HeldByTask(8), 0u);
  EXPECT_TRUE(pool.AllocatedChunks().empty());
}

TEST(ChunkPoolTest, ForceFreeWorksOnSmallClassChunks) {
  ChunkPool pool(SmallPool());
  auto handle = *pool.Allocate(ChunkOwner{9, 0}, KiB(10));
  ASSERT_EQ(handle.level, 1u);
  ASSERT_TRUE(pool.ForceFree(handle).ok());
  EXPECT_EQ(pool.free_chunks(), 8u);
  EXPECT_EQ(pool.frag_bytes(), 0u);
}

TEST(ChunkPoolTest, AllocatedChunksSpansAllLevels) {
  ChunkPool pool(SmallPool());
  auto bulk = *pool.Allocate(ChunkOwner{1, 0});
  auto small = *pool.Allocate(ChunkOwner{2, 0}, KiB(10));
  auto chunks = pool.AllocatedChunks();
  ASSERT_EQ(chunks.size(), 2u);
  std::unordered_set<ChunkHandle> listed;
  for (const auto& [handle, owner] : chunks) listed.insert(handle);
  EXPECT_TRUE(listed.count(bulk));
  EXPECT_TRUE(listed.count(small));
}

TEST(ChunkPoolTest, HeldByTaskCountsAcrossLevels) {
  ChunkPool pool(SmallPool());
  auto a = *pool.Allocate(ChunkOwner{5, 0});
  (void)pool.Allocate(ChunkOwner{5, 0}, KiB(10));
  (void)pool.Allocate(ChunkOwner{6, 2});
  EXPECT_EQ(pool.HeldByTask(5), 2u);
  EXPECT_EQ(pool.HeldByTask(6), 1u);
  EXPECT_EQ(pool.HeldByTask(7), 0u);
  ASSERT_TRUE(pool.Free(a, ChunkOwner{5, 0}).ok());
  EXPECT_EQ(pool.HeldByTask(5), 1u);
}

TEST(ChunkPoolTest, LockModelChargesWaitPlusHold) {
  sim::Engine engine;
  ChunkPoolConfig config = SmallPool();
  config.lock_hold = Micros(2);
  ChunkPool pool(config, &engine);
  ChunkOwner owner{1, 0};
  // Back-to-back at the same instant: the first pays only its hold, the
  // second waits out that hold before paying its own.
  (void)pool.Allocate(owner);
  (void)pool.Allocate(owner);
  EXPECT_EQ(pool.TakeLockWait(), Micros(2) + Micros(4));
  EXPECT_EQ(pool.TakeLockWait(), Duration{0});  // collected exactly once
  EXPECT_EQ(pool.lock_wait_total(), Micros(6));
}

TEST(ChunkPoolTest, PerLevelLocksDoNotConvoyAcrossClasses) {
  sim::Engine engine;
  ChunkPoolConfig config = SmallPool();
  config.lock_hold = Micros(2);
  ChunkPool pool(config, &engine);
  ChunkOwner owner{1, 0};
  // Pin a slot so the 64 KiB slab stays carved, then drain the charge.
  auto pin = *pool.Allocate(owner, KiB(10));
  (void)pool.TakeLockWait();
  // Once the carve's lock horizons pass, a bulk allocation and a small
  // allocation at the same instant hit different locks: neither waits,
  // each pays one hold.
  auto run = [&]() -> sim::Task<> {
    co_await engine.Delay(Micros(100));
    (void)pool.Allocate(owner);
    (void)pool.Allocate(owner, KiB(10));
  };
  engine.Spawn(run());
  engine.Run();
  EXPECT_EQ(pool.TakeLockWait(), Micros(4));
  ASSERT_TRUE(pool.Free(pin, owner).ok());
}

TEST(ChunkPoolTest, FlatModeDoublesHoldAndSharesOneLock) {
  sim::Engine engine;
  ChunkPoolConfig config = SmallPool();
  config.lock_hold = Micros(2);
  config.flat = true;
  ChunkPool pool(config, &engine);
  ChunkOwner owner{1, 0};
  // Flat critical sections cover the segment scan (hold x2) and every
  // operation shares the one lock: 4us, then 4us wait + 4us hold.
  (void)pool.Allocate(owner);
  (void)pool.Allocate(owner, KiB(10));
  EXPECT_EQ(pool.TakeLockWait(), Micros(4) + Micros(8));
}

TEST(ChunkPoolTest, HandlesAndOwnersAreHashable) {
  ChunkPool pool(SmallPool());
  std::unordered_map<ChunkHandle, ChunkOwner> live;
  for (int i = 1; i <= 4; ++i) {
    ChunkOwner owner{static_cast<uint64_t>(i), 0};
    live.emplace(*pool.Allocate(owner), owner);
    live.emplace(*pool.Allocate(owner, KiB(10)), owner);
  }
  EXPECT_EQ(live.size(), 8u);  // bulk and small handles never collide
  std::unordered_map<ChunkOwner, uint64_t> held;
  for (const auto& [handle, owner] : pool.AllocatedChunks()) {
    ASSERT_TRUE(live.count(handle));
    EXPECT_EQ(live.at(handle), owner);
    ++held[owner];
  }
  EXPECT_EQ(held.size(), 4u);
  EXPECT_EQ(held.at(ChunkOwner{2, 0}), 2u);
}

}  // namespace
}  // namespace spongefiles::sponge
