#include "sponge/chunk_pool.h"

#include <gtest/gtest.h>

#include "common/units.h"

namespace spongefiles::sponge {
namespace {

ChunkPoolConfig SmallPool() {
  ChunkPoolConfig config;
  config.pool_size = MiB(8);
  config.chunk_size = MiB(1);
  return config;
}

TEST(ChunkPoolTest, CapacityFromConfig) {
  ChunkPool pool(SmallPool());
  EXPECT_EQ(pool.total_chunks(), 8u);
  EXPECT_EQ(pool.free_chunks(), 8u);
  EXPECT_EQ(pool.free_bytes(), MiB(8));
}

TEST(ChunkPoolTest, SegmentsCappedAtTwoGigabytes) {
  // Mirrors the JVM's 2 GB mapped-file limit: a 5 GB pool needs 3 segments.
  ChunkPoolConfig config;
  config.pool_size = GiB(5);
  config.chunk_size = MiB(1);
  ChunkPool pool(config);
  EXPECT_EQ(pool.segments(), 3u);
  EXPECT_EQ(pool.total_chunks(), 5u * 1024);
}

TEST(ChunkPoolTest, AllocateAndFree) {
  ChunkPool pool(SmallPool());
  ChunkOwner owner{42, 3};
  auto handle = pool.Allocate(owner);
  ASSERT_TRUE(handle.ok());
  EXPECT_EQ(pool.free_chunks(), 7u);
  EXPECT_EQ(pool.OwnerOf(*handle)->task_id, 42u);
  ASSERT_TRUE(pool.Free(*handle, owner).ok());
  EXPECT_EQ(pool.free_chunks(), 8u);
}

TEST(ChunkPoolTest, ExhaustionReturnsResourceExhausted) {
  ChunkPool pool(SmallPool());
  ChunkOwner owner{1, 0};
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(pool.Allocate(owner).ok());
  }
  auto overflow = pool.Allocate(owner);
  EXPECT_EQ(overflow.status().code(), StatusCode::kResourceExhausted);
}

TEST(ChunkPoolTest, FreeingMakesChunkReusable) {
  ChunkPool pool(SmallPool());
  ChunkOwner a{1, 0};
  std::vector<ChunkHandle> handles;
  for (int i = 0; i < 8; ++i) handles.push_back(*pool.Allocate(a));
  ASSERT_TRUE(pool.Free(handles[3], a).ok());
  auto fresh = pool.Allocate(ChunkOwner{2, 1});
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(*pool.OwnerOf(*fresh), (ChunkOwner{2, 1}));
}

TEST(ChunkPoolTest, DoubleFreeRejected) {
  ChunkPool pool(SmallPool());
  ChunkOwner owner{7, 0};
  auto handle = *pool.Allocate(owner);
  ASSERT_TRUE(pool.Free(handle, owner).ok());
  EXPECT_EQ(pool.Free(handle, owner).code(), StatusCode::kFailedPrecondition);
}

TEST(ChunkPoolTest, FreeByWrongOwnerRejected) {
  ChunkPool pool(SmallPool());
  auto handle = *pool.Allocate(ChunkOwner{7, 0});
  EXPECT_EQ(pool.Free(handle, ChunkOwner{8, 0}).code(),
            StatusCode::kFailedPrecondition);
  // Same task id from a different node is a different owner.
  EXPECT_EQ(pool.Free(handle, ChunkOwner{7, 1}).code(),
            StatusCode::kFailedPrecondition);
}

TEST(ChunkPoolTest, ZeroOwnerIdRejected) {
  ChunkPool pool(SmallPool());
  EXPECT_EQ(pool.Allocate(ChunkOwner{0, 0}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ChunkPoolTest, DataSurvivesUntilFree) {
  ChunkPool pool(SmallPool());
  ChunkOwner owner{5, 2};
  auto handle = *pool.Allocate(owner);
  ByteRuns* data = pool.chunk_data(handle);
  ASSERT_NE(data, nullptr);
  data->AppendLiteral(Slice(std::string_view("payload")));
  EXPECT_EQ(pool.chunk_data(handle)->size(), 7u);
  ASSERT_TRUE(pool.Free(handle, owner).ok());
  EXPECT_EQ(pool.chunk_data(handle), nullptr);
}

TEST(ChunkPoolTest, AllocatedChunksListsOwners) {
  ChunkPool pool(SmallPool());
  auto h1 = *pool.Allocate(ChunkOwner{1, 0});
  auto h2 = *pool.Allocate(ChunkOwner{2, 4});
  auto chunks = pool.AllocatedChunks();
  ASSERT_EQ(chunks.size(), 2u);
  EXPECT_TRUE((chunks[0].first == h1 && chunks[1].first == h2) ||
              (chunks[0].first == h2 && chunks[1].first == h1));
}

TEST(ChunkPoolTest, ResetFreesEverything) {
  ChunkPool pool(SmallPool());
  for (int i = 0; i < 5; ++i) (void)pool.Allocate(ChunkOwner{1, 0});
  pool.Reset();
  EXPECT_EQ(pool.free_chunks(), 8u);
  EXPECT_TRUE(pool.AllocatedChunks().empty());
}

TEST(ChunkPoolTest, ForceFreeIgnoresOwner) {
  ChunkPool pool(SmallPool());
  auto handle = *pool.Allocate(ChunkOwner{9, 3});
  ASSERT_TRUE(pool.ForceFree(handle).ok());
  EXPECT_EQ(pool.free_chunks(), 8u);
}

}  // namespace
}  // namespace spongefiles::sponge
