// Speculative execution end-to-end: the JobTracker watches per-attempt
// progress and launches one backup for a task lagging the wave's median,
// first attempt to commit wins, and the loser is killed and deregistered.
// These tests pin down both races deterministically — a degraded-disk
// straggler whose backup wins, and a small-split false positive whose
// original wins — plus the two properties the attempt refactor exists
// for: a killed attempt's abort can never clobber the job status (each
// primary driver reports exactly one outcome through the result channel),
// and a cancelled attempt's sponge chunks are reclaimed by the ordinary
// dead-task GC.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "cluster/dfs.h"
#include "common/table.h"
#include "common/units.h"
#include "mapred/job.h"
#include "obs/metrics.h"
#include "sponge/failure.h"
#include "workload/testbed.h"

namespace spongefiles {
namespace {

struct SpecCounters {
  uint64_t launched;
  uint64_t won;
  uint64_t cancelled;

  static SpecCounters Snapshot() {
    obs::Registry& registry = obs::Registry::Default();
    return {
        registry.counter("mapred.speculation.launched")->value(),
        registry.counter("mapred.speculation.won")->value(),
        registry.counter("mapred.speculation.cancelled")->value(),
    };
  }
};

// Tight knobs so a straggler is flagged within a couple of simulated
// seconds (the defaults are tuned for long production tasks).
mapred::SpeculationConfig AggressiveSpeculation() {
  mapred::SpeculationConfig spec;
  spec.enabled = true;
  spec.check_period = Millis(500);
  spec.min_attempt_age = Seconds(2);
  spec.lag_factor = 2.0;
  return spec;
}

struct MedianRun {
  Status status;
  Duration runtime = 0;
  std::vector<mapred::Record> output;
  std::vector<mapred::TaskStats> map_tasks;
  double expected_median = 0;
};

// Median job on an 8-node testbed with the disk under the first split's
// node running 30x slow: that map's sort/spill/merge IO crawls while its
// rack peers finish, so the speculation monitor flags it. The backup
// still pays the slow remote scan (the block lives on the sick disk) but
// escapes the 30x spill path, and commits first. Pinned memory shrinks
// the OS buffer cache to ~48 MB so the spill stream really reaches the
// disk instead of parking in write-back cache.
MedianRun RunMedianWithSlowDisk(bool speculate) {
  workload::TestbedConfig bed_config;
  bed_config.num_nodes = 8;
  bed_config.sponge_memory = MiB(64);
  bed_config.node_memory = GiB(4);
  bed_config.pinned_memory = MiB(400);
  workload::Testbed bed(bed_config);
  workload::NumbersDatasetConfig data;
  data.count = 50001;
  workload::NumbersDataset numbers(&bed.dfs(), "nums", data);
  auto straggler_node = bed.dfs().BlockLocation("nums", 0);
  EXPECT_TRUE(straggler_node.ok());

  sponge::FailureInjector injector(&bed.env(), 1);
  injector.ScheduleDiskSlowdown(*straggler_node, Millis(100), /*factor=*/30.0,
                                Minutes(5));

  auto job = workload::MakeMedianJob(&numbers, mapred::SpillMode::kSponge);
  if (speculate) job.speculation = AggressiveSpeculation();

  MedianRun run;
  run.expected_median = numbers.expected_median();
  auto result = bed.RunJob(std::move(job));
  run.status = result.status();
  if (!result.ok()) return run;
  run.runtime = result->runtime;
  run.output = result->output;
  run.map_tasks = result->map_tasks;
  return run;
}

TEST(SpeculationTest, BackupWinsForDegradedDiskStraggler) {
  SpecCounters before = SpecCounters::Snapshot();
  MedianRun run = RunMedianWithSlowDisk(/*speculate=*/true);
  SpecCounters after = SpecCounters::Snapshot();

  ASSERT_TRUE(run.status.ok()) << run.status.ToString();
  ASSERT_EQ(run.output.size(), 1u);
  EXPECT_EQ(run.output[0].number, run.expected_median);
  EXPECT_GE(after.launched - before.launched, 1u);
  EXPECT_GE(after.won - before.won, 1u);
  bool backup_produced_a_map = false;
  for (const auto& stats : run.map_tasks) {
    if (stats.speculative) {
      backup_produced_a_map = true;
      EXPECT_GE(stats.attempts, 2);
    }
  }
  EXPECT_TRUE(backup_produced_a_map);

  // Deterministic per seed: the identical scenario replays tick-for-tick.
  MedianRun replay = RunMedianWithSlowDisk(/*speculate=*/true);
  ASSERT_TRUE(replay.status.ok()) << replay.status.ToString();
  EXPECT_EQ(replay.runtime, run.runtime);
  EXPECT_EQ(replay.output, run.output);
}

TEST(SpeculationTest, SpeculationBeatsTheStragglerEndToEnd) {
  // Same fault with and without speculation: backups must shorten the
  // job, never change its answer.
  MedianRun plain = RunMedianWithSlowDisk(/*speculate=*/false);
  MedianRun speculated = RunMedianWithSlowDisk(/*speculate=*/true);
  ASSERT_TRUE(plain.status.ok()) << plain.status.ToString();
  ASSERT_TRUE(speculated.status.ok()) << speculated.status.ToString();
  EXPECT_EQ(plain.output, speculated.output);
  EXPECT_LT(speculated.runtime, plain.runtime);
}

// An input whose first split is a fraction of the others: its map has
// genuinely less work, so its absolute progress trails the wave median
// and the monitor flags it — a false positive. The original (nearly done)
// must commit first and the backup must die without a trace.
class SkewedSplits : public mapred::InputFormat {
 public:
  explicit SkewedSplits(cluster::Dfs* dfs) {
    (void)dfs->CreateFile("skew", kSplits * cluster::Dfs::kBlockSize);
  }

  std::vector<mapred::InputSplit> Splits() override {
    std::vector<mapred::InputSplit> splits;
    for (size_t i = 0; i < kSplits; ++i) {
      mapred::InputSplit split;
      split.dfs_file = "skew";
      split.offset = i * cluster::Dfs::kBlockSize;
      split.bytes = i == 0 ? MiB(24) : cluster::Dfs::kBlockSize;
      uint64_t records = split.bytes / KiB(10);
      split.generate = [records]() {
        std::vector<mapred::Record> out;
        out.reserve(records);
        for (uint64_t j = 0; j < records; ++j) {
          mapred::Record r;
          r.key = StrFormat("k%06d", static_cast<int>(j));
          r.number = static_cast<double>(j);
          r.size = KiB(10);
          out.push_back(std::move(r));
        }
        return out;
      };
      splits.push_back(std::move(split));
    }
    return splits;
  }

 private:
  static constexpr size_t kSplits = 8;
};

TEST(SpeculationTest, OriginalWinsAndCancelledBackupCannotClobberJob) {
  workload::TestbedConfig bed_config;
  bed_config.num_nodes = 8;
  workload::Testbed bed(bed_config);
  SkewedSplits input(&bed.dfs());

  mapred::JobConfig job;
  job.name = "skewed-scan";
  job.input = &input;
  job.reducer_factory = nullptr;  // map-only
  job.map_cpu_per_record = Millis(1);
  job.speculation = AggressiveSpeculation();

  SpecCounters before = SpecCounters::Snapshot();
  auto result = bed.RunJob(std::move(job));
  SpecCounters after = SpecCounters::Snapshot();

  // The killed backup aborts with a non-OK status; because only primary
  // drivers feed the attempt-result channel, the job result stays OK.
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GE(after.launched - before.launched, 1u);
  EXPECT_EQ(after.won - before.won, 0u);
  EXPECT_GE(after.cancelled - before.cancelled, 1u);
  ASSERT_EQ(result->map_tasks.size(), 8u);
  EXPECT_EQ(result->map_tasks[0].attempts, 2);
  for (const auto& stats : result->map_tasks) {
    EXPECT_FALSE(stats.speculative);
    EXPECT_TRUE(stats.completed);
  }
}

struct ShuffleRun {
  Status status;
  std::vector<mapred::Record> output;
  std::vector<mapred::TaskStats> reduce_tasks;
  uint64_t leaked_chunks = 0;
  uint64_t backups_won = 0;
  uint64_t backups_cancelled = 0;
};

// Sums the (integer) values of each key; integer sums are exact, so the
// result is independent of value arrival order and comparable between a
// clean run and one where a backup replaced the original attempt.
class KeySumReducer : public mapred::Reducer {
 public:
  sim::Task<Status> StartKey(std::string key) override {
    key_ = std::move(key);
    sum_ = 0;
    co_return Status::OK();
  }
  sim::Task<Status> AddValue(mapred::Record value) override {
    sum_ += value.number;
    co_return Status::OK();
  }
  sim::Task<Status> FinishKey() override {
    mapred::Record out;
    out.key = key_;
    out.number = sum_;
    ctx_->output->push_back(std::move(out));
    co_return Status::OK();
  }
  sim::Task<Status> Finish() override { co_return Status::OK(); }

 private:
  std::string key_;
  double sum_ = 0;
};

// A uniform 8-partition shuffle (key = record number mod 8) on 10 nodes;
// when `degrade` is set, one reducer's NIC picks up +250 ms per transfer
// so its shuffle crawls while every other partition — same size by
// construction — commits quickly, making the straggler flag both certain
// and deterministic. Small reduce heaps force shuffle spills through the
// sponge, so the killed loser owns live chunks at kill time. Two
// properties keep the gray fault confined to the victim's shuffle:
// fetches ride raw network transfers (no RPC deadline to bust), and the
// pools are roomy enough that every reduce spills into *local* sponge
// memory — no sponge RPC ever crosses the victim's sick link, so no
// circuit breaker anywhere can trip on collateral traffic.
ShuffleRun RunUniformShuffle(bool degrade) {
  constexpr int kPartitions = 8;
  workload::TestbedConfig bed_config;
  bed_config.num_nodes = 10;
  // Each partition's ~131 MB of spills (plus merge rewrites) must fit in
  // the reducer's local pool — see the header comment.
  bed_config.sponge_memory = MiB(512);
  workload::Testbed bed(bed_config);
  workload::NumbersDatasetConfig data;
  // 1 GB in eight 128 MB splits: the victim's crawling fetch camps on one
  // of eight source NICs at a time, so healthy attempts (and the backup)
  // keep seven fast sources and finish ~5x sooner.
  data.count = 102400;
  workload::NumbersDataset numbers(&bed.dfs(), "nums", data);
  const uint64_t file_bytes = 8 * cluster::Dfs::kBlockSize;

  // A node in the reduce range [1, 8) that hosts no input block, so the
  // sick NIC touches exactly one reduce attempt and no map scans.
  size_t victim = 0;
  for (size_t node = 1; node < kPartitions && victim == 0; ++node) {
    bool holds_block = false;
    for (uint64_t off = 0; off < file_bytes;
         off += cluster::Dfs::kBlockSize) {
      auto loc = bed.dfs().BlockLocation("nums", off);
      if (loc.ok() && *loc == node) {
        holds_block = true;
        break;
      }
    }
    if (!holds_block) victim = node;
  }
  EXPECT_NE(victim, 0u) << "every candidate node holds a block";

  sponge::FailureInjector injector(&bed.env(), 1);
  constexpr Duration kWindow = Minutes(2);
  if (degrade) {
    injector.ScheduleLinkDegradation(victim, Millis(500),
                                     /*bandwidth_factor=*/0.1,
                                     /*extra_latency=*/Millis(250), kWindow);
  }

  mapred::JobConfig job;
  job.name = "uniform-shuffle";
  job.input = &numbers;
  job.num_reducers = kPartitions;
  job.spill_mode = mapred::SpillMode::kSponge;
  job.reduce_heap_bytes = MiB(2);
  job.speculation = AggressiveSpeculation();
  job.map_fn = [](const mapred::Record& in,
                  std::vector<mapred::Record>* out) {
    mapred::Record r = in;
    r.key = std::string(1, static_cast<char>(
        'a' + static_cast<uint64_t>(in.number) % kPartitions));
    out->push_back(std::move(r));
  };
  job.partitioner = [](const mapred::Record& record, int reducers) {
    return static_cast<size_t>(record.key[0] - 'a') %
           static_cast<size_t>(reducers);
  };
  job.reducer_factory = [] { return std::make_unique<KeySumReducer>(); };

  SpecCounters before = SpecCounters::Snapshot();
  ShuffleRun run;
  auto result = bed.RunJob(std::move(job));
  SpecCounters after = SpecCounters::Snapshot();
  run.backups_won = after.won - before.won;
  run.backups_cancelled = after.cancelled - before.cancelled;
  run.status = result.status();
  if (!result.ok()) return run;
  run.output = result->output;
  run.reduce_tasks = result->reduce_tasks;

  // Let the degradation window close, then GC-sweep every server and
  // count survivors: a cancelled attempt must leak nothing.
  SimTime settle = std::max(bed.engine().now(), Millis(500) + kWindow);
  bed.engine().RunUntil(settle + Seconds(10));
  bool swept = false;
  auto sweep = [](workload::Testbed* tb, ShuffleRun* record,
                  bool* done) -> sim::Task<> {
    for (size_t n = 0; n < tb->cluster().size(); ++n) {
      (void)co_await tb->env().server(n).GcSweep();
      record->leaked_chunks +=
          tb->env().server(n).pool().AllocatedChunks().size();
    }
    *done = true;
  };
  bed.engine().Spawn(sweep(&bed, &run, &swept));
  bed.engine().RunUntil(bed.engine().now() + Seconds(10));
  EXPECT_TRUE(swept) << "GC sweep did not finish";
  return run;
}

TEST(SpeculationTest, CancelledAttemptLeaksNoChunksAfterGc) {
  ShuffleRun faulted = RunUniformShuffle(/*degrade=*/true);
  ASSERT_TRUE(faulted.status.ok()) << faulted.status.ToString();
  // The crawling reduce was speculated and lost; its killed attempt was
  // deregistered, so the sweep finds nothing left behind.
  EXPECT_GE(faulted.backups_won, 1u);
  EXPECT_GE(faulted.backups_cancelled, 1u);
  EXPECT_EQ(faulted.leaked_chunks, 0u);

  ShuffleRun clean = RunUniformShuffle(/*degrade=*/false);
  ASSERT_TRUE(clean.status.ok()) << clean.status.ToString();
  EXPECT_EQ(clean.leaked_chunks, 0u);
  // Backups may race but must never change what the job computes.
  EXPECT_EQ(faulted.output, clean.output);
}

}  // namespace
}  // namespace spongefiles
