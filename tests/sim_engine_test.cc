#include "sim/engine.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/task.h"

namespace spongefiles::sim {
namespace {

Task<> Sleeper(Engine* engine, Duration d, std::vector<int>* log, int id) {
  co_await engine->Delay(d);
  log->push_back(id);
}

TEST(EngineTest, TimeStartsAtZero) {
  Engine engine;
  EXPECT_EQ(engine.now(), 0);
}

TEST(EngineTest, DelayAdvancesTime) {
  Engine engine;
  std::vector<int> log;
  engine.Spawn(Sleeper(&engine, Millis(5), &log, 1));
  engine.Run();
  EXPECT_EQ(engine.now(), Millis(5));
  EXPECT_EQ(log, std::vector<int>({1}));
}

TEST(EngineTest, EventsFireInTimeOrder) {
  Engine engine;
  std::vector<int> log;
  engine.Spawn(Sleeper(&engine, Millis(30), &log, 3));
  engine.Spawn(Sleeper(&engine, Millis(10), &log, 1));
  engine.Spawn(Sleeper(&engine, Millis(20), &log, 2));
  engine.Run();
  EXPECT_EQ(log, std::vector<int>({1, 2, 3}));
}

TEST(EngineTest, SameTimeFifoBySpawnOrder) {
  Engine engine;
  std::vector<int> log;
  for (int i = 0; i < 5; ++i) {
    engine.Spawn(Sleeper(&engine, Millis(7), &log, i));
  }
  engine.Run();
  EXPECT_EQ(log, std::vector<int>({0, 1, 2, 3, 4}));
}

TEST(EngineTest, ZeroDelayYields) {
  Engine engine;
  std::vector<int> log;
  engine.Spawn(Sleeper(&engine, 0, &log, 1));
  engine.Run();
  EXPECT_EQ(engine.now(), 0);
  EXPECT_EQ(log, std::vector<int>({1}));
}

Task<> SequentialDelays(Engine* engine, std::vector<SimTime>* times) {
  co_await engine->Delay(Millis(1));
  times->push_back(engine->now());
  co_await engine->Delay(Millis(2));
  times->push_back(engine->now());
  co_await engine->Delay(Millis(3));
  times->push_back(engine->now());
}

TEST(EngineTest, DelaysAccumulate) {
  Engine engine;
  std::vector<SimTime> times;
  engine.Spawn(SequentialDelays(&engine, &times));
  engine.Run();
  EXPECT_EQ(times,
            std::vector<SimTime>({Millis(1), Millis(3), Millis(6)}));
}

Task<int> Compute(Engine* engine, int x) {
  co_await engine->Delay(Millis(1));
  co_return x * 2;
}

Task<> AwaitChild(Engine* engine, int* out) {
  *out = co_await Compute(engine, 21);
}

TEST(EngineTest, ChildTaskReturnsValue) {
  Engine engine;
  int out = 0;
  engine.Spawn(AwaitChild(&engine, &out));
  engine.Run();
  EXPECT_EQ(out, 42);
}

Task<int> Fib(Engine* engine, int n) {
  if (n <= 1) co_return n;
  int a = co_await Fib(engine, n - 1);
  int b = co_await Fib(engine, n - 2);
  co_return a + b;
}

Task<> AwaitFib(Engine* engine, int* out) { *out = co_await Fib(engine, 12); }

TEST(EngineTest, DeepNestedAwaits) {
  Engine engine;
  int out = 0;
  engine.Spawn(AwaitFib(&engine, &out));
  engine.Run();
  EXPECT_EQ(out, 144);
}

TEST(EngineTest, SpawnAtStartsLater) {
  Engine engine;
  std::vector<int> log;
  engine.SpawnAt(Millis(100), Sleeper(&engine, Millis(1), &log, 9));
  engine.Run();
  EXPECT_EQ(engine.now(), Millis(101));
  EXPECT_EQ(log, std::vector<int>({9}));
}

TEST(EngineTest, RunUntilStopsAtDeadline) {
  Engine engine;
  std::vector<int> log;
  engine.Spawn(Sleeper(&engine, Millis(10), &log, 1));
  engine.Spawn(Sleeper(&engine, Millis(50), &log, 2));
  engine.RunUntil(Millis(20));
  EXPECT_EQ(log, std::vector<int>({1}));
  EXPECT_EQ(engine.now(), Millis(20));
  engine.Run();
  EXPECT_EQ(log, std::vector<int>({1, 2}));
}

Task<> SpawnFromInside(Engine* engine, std::vector<int>* log) {
  log->push_back(1);
  engine->Spawn(Sleeper(engine, Millis(1), log, 2));
  co_await engine->Delay(Millis(5));
  log->push_back(3);
}

TEST(EngineTest, TasksCanSpawnTasks) {
  Engine engine;
  std::vector<int> log;
  engine.Spawn(SpawnFromInside(&engine, &log));
  engine.Run();
  EXPECT_EQ(log, std::vector<int>({1, 2, 3}));
}

struct DrainProbe {
  bool* destroyed;
  ~DrainProbe() { *destroyed = true; }
};

Task<> ParkForever(Engine* engine, bool* destroyed) {
  DrainProbe probe{destroyed};
  // Parks a century out; only DrainDetached can reclaim the frame (and
  // must run this local's destructor when it does).
  co_await engine->Delay(Minutes(100.0 * 365 * 24 * 60));
}

TEST(EngineTest, DrainDetachedReclaimsParkedCoroutines) {
  Engine engine;
  bool destroyed = false;
  std::vector<int> log;
  engine.Spawn(ParkForever(&engine, &destroyed));
  engine.Spawn(Sleeper(&engine, Millis(1), &log, 1));
  engine.RunUntil(Millis(10));
  // The sleeper finished and removed itself; the parked frame is live.
  EXPECT_EQ(log, std::vector<int>({1}));
  EXPECT_EQ(engine.detached_live(), 1u);
  EXPECT_FALSE(destroyed);
  EXPECT_EQ(engine.DrainDetached(), 1u);
  EXPECT_TRUE(destroyed);
  EXPECT_EQ(engine.detached_live(), 0u);
  // Idempotent: nothing left to reclaim.
  EXPECT_EQ(engine.DrainDetached(), 0u);
}

TEST(EngineTest, ManyTasksComplete) {
  Engine engine;
  std::vector<int> log;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    engine.Spawn(Sleeper(&engine, Millis(i % 97), &log, i));
  }
  engine.Run();
  EXPECT_EQ(log.size(), static_cast<size_t>(n));
}

// ---- event-engine fast path (same-instant ring + 4-ary heap) --------------

Task<> YieldThenLog(Engine* engine, std::vector<int>* log, int id,
                    int yields) {
  for (int i = 0; i < yields; ++i) co_await engine->Delay(0);
  log->push_back(id);
}

TEST(EngineTest, SameInstantFifoAcrossRingAndHeap) {
  // Mixes the two ways an event lands at the same instant: scheduled ahead
  // of time (heap, when now < at) and scheduled at now (ring). All heap
  // events at T were scheduled before time reached T, so they must fire
  // before every zero-delay yield enqueued at T — and within each class,
  // in schedule order.
  Engine engine;
  std::vector<int> log;
  // Heap residents for t=5ms, scheduled at t=0 in order 0,1,2.
  for (int i = 0; i < 3; ++i) {
    engine.Spawn(Sleeper(&engine, Millis(5), &log, i));
  }
  // This one also sleeps to t=5ms (scheduled third) and then re-yields at
  // t=5ms twice through the ring before logging.
  auto late = [](Engine* eng, std::vector<int>* out) -> Task<> {
    co_await eng->Delay(Millis(5));
    co_await eng->Delay(0);
    co_await eng->Delay(0);
    out->push_back(99);
  };
  engine.Spawn(late(&engine, &log));
  engine.Run();
  EXPECT_EQ(log, std::vector<int>({0, 1, 2, 99}));
  EXPECT_EQ(engine.now(), Millis(5));
}

TEST(EngineTest, InterleavedZeroDelayYieldsStayFifo) {
  // Several coroutines ping-ponging through zero-delay yields at the same
  // instant must interleave round-robin (each yield re-enqueues behind the
  // others), not batch per-coroutine.
  Engine engine;
  std::vector<int> log;
  auto lane = [](Engine* eng, std::vector<int>* out, int id) -> Task<> {
    for (int round = 0; round < 3; ++round) {
      out->push_back(id * 10 + round);
      co_await eng->Delay(0);
    }
  };
  engine.Spawn(lane(&engine, &log, 1));
  engine.Spawn(lane(&engine, &log, 2));
  engine.Run();
  EXPECT_EQ(log,
            std::vector<int>({10, 20, 11, 21, 12, 22}));
}

TEST(EngineTest, RingGrowsPastInitialCapacityWithoutReordering) {
  // More same-instant events than the ring's initial slab (1024) forces the
  // grow-and-linearize path mid-drain; FIFO order must survive it.
  Engine engine;
  std::vector<int> log;
  const int n = 5000;
  log.reserve(n);
  for (int i = 0; i < n; ++i) {
    engine.Spawn(YieldThenLog(&engine, &log, i, /*yields=*/2));
  }
  engine.Run();
  ASSERT_EQ(log.size(), static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) EXPECT_EQ(log[i], i);
  EXPECT_EQ(engine.now(), 0);
}

TEST(EngineTest, ZeroDelayEventStormSmoke) {
  // ~1M zero-delay events through the same-instant path, with a timed
  // event sprinkled per lane so the heap stays engaged. Guards against
  // regressions where the ring/heap interplay drops, duplicates, or
  // reorders work at scale.
  Engine engine;
  uint64_t before = engine.events_processed();
  std::vector<int> log;
  const int lanes = 8;
  const int yields = 125000;
  auto lane = [](Engine* eng, int id, int n, uint64_t* acc) -> Task<> {
    for (int i = 0; i < n; ++i) {
      co_await eng->Delay((i % 16) == id ? 1 : 0);
      ++*acc;
    }
  };
  uint64_t acc = 0;
  for (int id = 0; id < lanes; ++id) {
    engine.Spawn(lane(&engine, id, yields, &acc));
  }
  engine.Run();
  EXPECT_EQ(acc, static_cast<uint64_t>(lanes) * yields);
  // Every yield is one event, plus each lane's spawn wrapper start.
  EXPECT_GE(engine.events_processed() - before,
            static_cast<uint64_t>(lanes) * yields);
  EXPECT_GT(engine.now(), 0);
  EXPECT_EQ(engine.detached_live(), 0u);
}

// ---- detached-frame registry (slot map) -----------------------------------

struct OrderProbe {
  std::vector<int>* order;
  int id;
  ~OrderProbe() { order->push_back(id); }
};

Task<> ParkWithProbe(Engine* engine, std::vector<int>* order, int id) {
  OrderProbe probe{order, id};
  co_await engine->Delay(Minutes(100.0 * 365 * 24 * 60));
}

TEST(EngineTest, DrainDetachedDestroysInSpawnOrderAfterSlotReuse) {
  // Finish a batch of early tasks so their registry slots get recycled,
  // then park frames in the recycled slots. DrainDetached must destroy
  // survivors in spawn order (monotone id), not slot order.
  Engine engine;
  std::vector<int> finished_log;
  std::vector<int> destroy_order;
  engine.Spawn(ParkWithProbe(&engine, &destroy_order, 0));
  for (int i = 0; i < 4; ++i) {
    engine.Spawn(Sleeper(&engine, Millis(1), &finished_log, i));
  }
  engine.RunUntil(Millis(2));  // sleepers done, their slots are free
  ASSERT_EQ(finished_log.size(), 4u);
  // These spawn into recycled slots (lower slot indices than probe 0's
  // neighbors), out of slot order but in spawn order 1, 2, 3.
  for (int i = 1; i <= 3; ++i) {
    engine.Spawn(ParkWithProbe(&engine, &destroy_order, i));
  }
  engine.RunUntil(Millis(3));  // let the parked frames start and suspend
  EXPECT_EQ(engine.detached_live(), 4u);
  EXPECT_EQ(engine.DrainDetached(), 4u);
  EXPECT_EQ(destroy_order, std::vector<int>({0, 1, 2, 3}));
}

TEST(EngineTest, DetachedSlotsRecycleWithoutGrowth) {
  // Sequential spawn/complete cycles must reuse one slot, not grow the
  // registry: detached_live returns to zero after each wave.
  Engine engine;
  std::vector<int> log;
  for (int wave = 0; wave < 100; ++wave) {
    engine.Spawn(Sleeper(&engine, Millis(1), &log, wave));
    engine.Run();
    EXPECT_EQ(engine.detached_live(), 0u);
  }
  EXPECT_EQ(log.size(), 100u);
}

}  // namespace
}  // namespace spongefiles::sim
