#include "sim/engine.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/task.h"

namespace spongefiles::sim {
namespace {

Task<> Sleeper(Engine* engine, Duration d, std::vector<int>* log, int id) {
  co_await engine->Delay(d);
  log->push_back(id);
}

TEST(EngineTest, TimeStartsAtZero) {
  Engine engine;
  EXPECT_EQ(engine.now(), 0);
}

TEST(EngineTest, DelayAdvancesTime) {
  Engine engine;
  std::vector<int> log;
  engine.Spawn(Sleeper(&engine, Millis(5), &log, 1));
  engine.Run();
  EXPECT_EQ(engine.now(), Millis(5));
  EXPECT_EQ(log, std::vector<int>({1}));
}

TEST(EngineTest, EventsFireInTimeOrder) {
  Engine engine;
  std::vector<int> log;
  engine.Spawn(Sleeper(&engine, Millis(30), &log, 3));
  engine.Spawn(Sleeper(&engine, Millis(10), &log, 1));
  engine.Spawn(Sleeper(&engine, Millis(20), &log, 2));
  engine.Run();
  EXPECT_EQ(log, std::vector<int>({1, 2, 3}));
}

TEST(EngineTest, SameTimeFifoBySpawnOrder) {
  Engine engine;
  std::vector<int> log;
  for (int i = 0; i < 5; ++i) {
    engine.Spawn(Sleeper(&engine, Millis(7), &log, i));
  }
  engine.Run();
  EXPECT_EQ(log, std::vector<int>({0, 1, 2, 3, 4}));
}

TEST(EngineTest, ZeroDelayYields) {
  Engine engine;
  std::vector<int> log;
  engine.Spawn(Sleeper(&engine, 0, &log, 1));
  engine.Run();
  EXPECT_EQ(engine.now(), 0);
  EXPECT_EQ(log, std::vector<int>({1}));
}

Task<> SequentialDelays(Engine* engine, std::vector<SimTime>* times) {
  co_await engine->Delay(Millis(1));
  times->push_back(engine->now());
  co_await engine->Delay(Millis(2));
  times->push_back(engine->now());
  co_await engine->Delay(Millis(3));
  times->push_back(engine->now());
}

TEST(EngineTest, DelaysAccumulate) {
  Engine engine;
  std::vector<SimTime> times;
  engine.Spawn(SequentialDelays(&engine, &times));
  engine.Run();
  EXPECT_EQ(times,
            std::vector<SimTime>({Millis(1), Millis(3), Millis(6)}));
}

Task<int> Compute(Engine* engine, int x) {
  co_await engine->Delay(Millis(1));
  co_return x * 2;
}

Task<> AwaitChild(Engine* engine, int* out) {
  *out = co_await Compute(engine, 21);
}

TEST(EngineTest, ChildTaskReturnsValue) {
  Engine engine;
  int out = 0;
  engine.Spawn(AwaitChild(&engine, &out));
  engine.Run();
  EXPECT_EQ(out, 42);
}

Task<int> Fib(Engine* engine, int n) {
  if (n <= 1) co_return n;
  int a = co_await Fib(engine, n - 1);
  int b = co_await Fib(engine, n - 2);
  co_return a + b;
}

Task<> AwaitFib(Engine* engine, int* out) { *out = co_await Fib(engine, 12); }

TEST(EngineTest, DeepNestedAwaits) {
  Engine engine;
  int out = 0;
  engine.Spawn(AwaitFib(&engine, &out));
  engine.Run();
  EXPECT_EQ(out, 144);
}

TEST(EngineTest, SpawnAtStartsLater) {
  Engine engine;
  std::vector<int> log;
  engine.SpawnAt(Millis(100), Sleeper(&engine, Millis(1), &log, 9));
  engine.Run();
  EXPECT_EQ(engine.now(), Millis(101));
  EXPECT_EQ(log, std::vector<int>({9}));
}

TEST(EngineTest, RunUntilStopsAtDeadline) {
  Engine engine;
  std::vector<int> log;
  engine.Spawn(Sleeper(&engine, Millis(10), &log, 1));
  engine.Spawn(Sleeper(&engine, Millis(50), &log, 2));
  engine.RunUntil(Millis(20));
  EXPECT_EQ(log, std::vector<int>({1}));
  EXPECT_EQ(engine.now(), Millis(20));
  engine.Run();
  EXPECT_EQ(log, std::vector<int>({1, 2}));
}

Task<> SpawnFromInside(Engine* engine, std::vector<int>* log) {
  log->push_back(1);
  engine->Spawn(Sleeper(engine, Millis(1), log, 2));
  co_await engine->Delay(Millis(5));
  log->push_back(3);
}

TEST(EngineTest, TasksCanSpawnTasks) {
  Engine engine;
  std::vector<int> log;
  engine.Spawn(SpawnFromInside(&engine, &log));
  engine.Run();
  EXPECT_EQ(log, std::vector<int>({1, 2, 3}));
}

struct DrainProbe {
  bool* destroyed;
  ~DrainProbe() { *destroyed = true; }
};

Task<> ParkForever(Engine* engine, bool* destroyed) {
  DrainProbe probe{destroyed};
  // Parks a century out; only DrainDetached can reclaim the frame (and
  // must run this local's destructor when it does).
  co_await engine->Delay(Minutes(100.0 * 365 * 24 * 60));
}

TEST(EngineTest, DrainDetachedReclaimsParkedCoroutines) {
  Engine engine;
  bool destroyed = false;
  std::vector<int> log;
  engine.Spawn(ParkForever(&engine, &destroyed));
  engine.Spawn(Sleeper(&engine, Millis(1), &log, 1));
  engine.RunUntil(Millis(10));
  // The sleeper finished and removed itself; the parked frame is live.
  EXPECT_EQ(log, std::vector<int>({1}));
  EXPECT_EQ(engine.detached_live(), 1u);
  EXPECT_FALSE(destroyed);
  EXPECT_EQ(engine.DrainDetached(), 1u);
  EXPECT_TRUE(destroyed);
  EXPECT_EQ(engine.detached_live(), 0u);
  // Idempotent: nothing left to reclaim.
  EXPECT_EQ(engine.DrainDetached(), 0u);
}

TEST(EngineTest, ManyTasksComplete) {
  Engine engine;
  std::vector<int> log;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    engine.Spawn(Sleeper(&engine, Millis(i % 97), &log, i));
  }
  engine.Run();
  EXPECT_EQ(log.size(), static_cast<size_t>(n));
}

}  // namespace
}  // namespace spongefiles::sim
