#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "cluster/cluster.h"
#include "cluster/dfs.h"
#include "common/units.h"
#include "pig/data_bag.h"
#include "pig/memory_manager.h"
#include "sim/engine.h"
#include "sponge/sponge_env.h"

namespace spongefiles::pig {
namespace {

struct BagFixture {
  sim::Engine engine;
  std::unique_ptr<cluster::Cluster> cluster_;
  std::unique_ptr<cluster::Dfs> dfs;
  std::unique_ptr<sponge::SpongeEnv> env;
  sponge::TaskContext task;
  std::unique_ptr<mapred::DiskSpiller> spiller;
  std::unique_ptr<mapred::CpuMeter> cpu;

  BagFixture() {
    cluster::ClusterConfig cc;
    cc.num_nodes = 2;
    cluster_ = std::make_unique<cluster::Cluster>(&engine, cc);
    dfs = std::make_unique<cluster::Dfs>(cluster_.get());
    env = std::make_unique<sponge::SpongeEnv>(cluster_.get(), dfs.get(),
                                              sponge::SpongeConfig{});
    task = env->StartTask(0);
    spiller = std::make_unique<mapred::DiskSpiller>(
        &engine, &cluster_->node(0).fs(), "bag-test");
    cpu = std::make_unique<mapred::CpuMeter>(&engine);
  }
};

Tuple MakeTuple(double number, uint64_t size = 1000) {
  Tuple t;
  t.key = "g";
  t.number = number;
  t.size = size;
  return t;
}

TEST(DataBagTest, SmallBagStaysInMemory) {
  BagFixture f;
  MemoryManager manager(MiB(10));
  Status status;
  auto run = [&]() -> sim::Task<> {
    DataBag bag(&manager, f.spiller.get(), f.cpu.get(), "b");
    for (int i = 0; i < 100; ++i) {
      (void)co_await bag.Add(MakeTuple(i));
    }
    EXPECT_EQ(bag.count(), 100u);
    EXPECT_EQ(bag.spilled_bytes(), 0u);
    EXPECT_GT(bag.memory_bytes(), 0u);
    double sum = 0;
    status = co_await bag.ForEach(
        [&](const Tuple& t) {
          sum += t.number;
          return Status::OK();
        },
        false);
    EXPECT_EQ(sum, 99.0 * 100 / 2);
    co_await bag.Destroy();
  };
  f.engine.Spawn(run());
  f.engine.Run();
  ASSERT_TRUE(status.ok()) << status.ToString();
}

TEST(DataBagTest, MemoryPressureSpillsInChunks) {
  BagFixture f;
  MemoryManager manager(MiB(1));
  Status status;
  auto run = [&]() -> sim::Task<> {
    DataBag bag(&manager, f.spiller.get(), f.cpu.get(), "b",
                /*spill_chunk_bytes=*/256 * kKiB);
    for (int i = 0; i < 3000; ++i) {
      status = co_await bag.Add(MakeTuple(i, 2000));
      if (!status.ok()) co_return;
    }
    // ~6 MB through a 1 MB budget: most must be spilled in 256 KB chunks.
    EXPECT_GT(bag.spilled_bytes(), MiB(4));
    EXPECT_LE(bag.memory_bytes(), MiB(1) + 2000);
    EXPECT_GE(bag.spill_file_count(), 16u);
    EXPECT_GT(manager.spill_upcalls(), 0u);
    // All tuples still observable, exactly once.
    std::set<double> seen;
    status = co_await bag.ForEach(
        [&](const Tuple& t) {
          EXPECT_TRUE(seen.insert(t.number).second);
          return Status::OK();
        },
        false);
    EXPECT_EQ(seen.size(), 3000u);
    co_await bag.Destroy();
  };
  f.engine.Spawn(run());
  f.engine.Run();
  ASSERT_TRUE(status.ok()) << status.ToString();
}

TEST(DataBagTest, RespillAllowsSecondPass) {
  BagFixture f;
  MemoryManager manager(100 * kKiB);
  Status status;
  auto run = [&]() -> sim::Task<> {
    DataBag bag(&manager, f.spiller.get(), f.cpu.get(), "b");
    for (int i = 0; i < 500; ++i) {
      (void)co_await bag.Add(MakeTuple(i, 2000));
    }
    uint64_t spilled_before = f.spiller->stats().bytes_spilled;
    int first_count = 0;
    status = co_await bag.ForEach(
        [&](const Tuple&) {
          ++first_count;
          return Status::OK();
        },
        /*respill=*/true);
    if (!status.ok()) co_return;
    EXPECT_EQ(first_count, 500);
    // The respill wrote the spilled portion again.
    EXPECT_GT(f.spiller->stats().bytes_spilled, spilled_before);
    int second_count = 0;
    status = co_await bag.ForEach(
        [&](const Tuple&) {
          ++second_count;
          return Status::OK();
        },
        /*respill=*/false);
    EXPECT_EQ(second_count, 500);
    co_await bag.Destroy();
  };
  f.engine.Spawn(run());
  f.engine.Run();
  ASSERT_TRUE(status.ok()) << status.ToString();
}

TEST(DataBagTest, SortedForEachOrdersAcrossSpills) {
  BagFixture f;
  MemoryManager manager(200 * kKiB);
  Status status;
  auto run = [&]() -> sim::Task<> {
    DataBag bag(&manager, f.spiller.get(), f.cpu.get(), "b",
                /*spill_chunk_bytes=*/100 * kKiB);
    // Insert in reverse so ordering is non-trivial; force heavy spilling.
    for (int i = 999; i >= 0; --i) {
      (void)co_await bag.Add(MakeTuple(i, 2000));
    }
    double last = -1;
    int count = 0;
    status = co_await bag.SortedForEach(
        [](const Tuple& a, const Tuple& b) { return a.number < b.number; },
        [&](const Tuple& t) {
          EXPECT_GT(t.number, last);
          last = t.number;
          ++count;
          return Status::OK();
        });
    EXPECT_EQ(count, 1000);
    EXPECT_EQ(bag.count(), 0u);  // consuming traversal
    co_await bag.Destroy();
  };
  f.engine.Spawn(run());
  f.engine.Run();
  ASSERT_TRUE(status.ok()) << status.ToString();
}

TEST(DataBagTest, DestroyFreesDiskSpace) {
  BagFixture f;
  MemoryManager manager(50 * kKiB);
  auto run = [&]() -> sim::Task<> {
    DataBag bag(&manager, f.spiller.get(), f.cpu.get(), "b");
    for (int i = 0; i < 500; ++i) {
      (void)co_await bag.Add(MakeTuple(i, 2000));
    }
    EXPECT_GT(f.cluster_->node(0).fs().used(), 0u);
    co_await bag.Destroy();
    EXPECT_EQ(f.cluster_->node(0).fs().used(), 0u);
  };
  f.engine.Spawn(run());
  f.engine.Run();
}

TEST(MemoryManagerTest, SpillsLargestBagFirst) {
  BagFixture f;
  MemoryManager manager(MiB(1));
  auto run = [&]() -> sim::Task<> {
    DataBag small(&manager, f.spiller.get(), f.cpu.get(), "small");
    DataBag big(&manager, f.spiller.get(), f.cpu.get(), "big");
    for (int i = 0; i < 100; ++i) {
      (void)co_await small.Add(MakeTuple(i, 1000));
    }
    for (int i = 0; i < 900; ++i) {
      (void)co_await big.Add(MakeTuple(i, 1000));
    }
    // Pushing past the budget spills the big bag, not the small one.
    for (int i = 0; i < 200; ++i) {
      (void)co_await big.Add(MakeTuple(i, 1000));
    }
    EXPECT_GT(big.spilled_bytes(), 0u);
    EXPECT_EQ(small.spilled_bytes(), 0u);
    co_await small.Destroy();
    co_await big.Destroy();
  };
  f.engine.Spawn(run());
  f.engine.Run();
}

TEST(MemoryManagerTest, TracksRegistrationAndUsage) {
  BagFixture f;
  MemoryManager manager(MiB(64));
  EXPECT_EQ(manager.bag_count(), 0u);
  auto run = [&]() -> sim::Task<> {
    DataBag bag(&manager, f.spiller.get(), f.cpu.get(), "b");
    EXPECT_EQ(manager.bag_count(), 1u);
    (void)co_await bag.Add(MakeTuple(1, 5000));
    EXPECT_GE(manager.memory_in_use(), 5000u);
    co_await bag.Destroy();
    EXPECT_EQ(manager.bag_count(), 0u);
  };
  f.engine.Spawn(run());
  f.engine.Run();
  EXPECT_EQ(manager.bag_count(), 0u);
}

}  // namespace
}  // namespace spongefiles::pig
