// Property test for the tiered chunk pool (ISSUE 10): a naive reference
// model — a hash map of live handles with their owners, declared sizes,
// and slot classes — is driven through random allocate / free /
// wrong-owner free / double free / force-free / reset sequences alongside
// the real ChunkPool, and after every step the pool's books must agree
// with the model exactly: allocation count, per-level byte conservation
// (free bytes + live slot bytes == capacity), internal-fragmentation
// bytes, per-task held counts, and the AllocatedChunks() index. Runs over
// several seeds, in both tiered and flat mode, and must end with zero
// leaked bytes once the model drains.
//
// The model's containers are keyed by ChunkHandle and ChunkOwner through
// their std::hash specializations, so this test is also the consumer-side
// check for those hashes (collisions would surface as spurious
// "duplicate handle" failures).

#include "sponge/chunk_pool.h"

#include <gtest/gtest.h>

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/random.h"
#include "common/units.h"

namespace spongefiles::sponge {
namespace {

struct ModelEntry {
  ChunkOwner owner;
  uint64_t req_bytes = 0;
  uint64_t class_bytes = 0;  // actual slot class (>= class_bytes_for)
};

uint64_t FragOf(const ModelEntry& entry) {
  return entry.req_bytes != 0 && entry.class_bytes > entry.req_bytes
             ? entry.class_bytes - entry.req_bytes
             : 0;
}

// Request-size generator biased toward the interesting boundaries: tiny
// headers, exact class sizes, one-past-a-class, bulk, and undeclared (0).
uint64_t RandomBytes(Rng& rng) {
  switch (rng.Uniform(8)) {
    case 0: return 0;
    case 1: return 1 + rng.Uniform(KiB(8));
    case 2: return KiB(64);
    case 3: return KiB(64) + 1 + rng.Uniform(KiB(16));
    case 4: return KiB(256);
    case 5: return KiB(256) + 1 + rng.Uniform(KiB(64));
    case 6: return MiB(1);
    default: return 1 + rng.Uniform(MiB(1));
  }
}

void CheckBooks(const ChunkPool& pool,
                const std::unordered_map<ChunkHandle, ModelEntry>& live,
                uint64_t capacity) {
  ASSERT_EQ(pool.allocated_count(), live.size());

  uint64_t live_bytes = 0;
  uint64_t frag = 0;
  std::unordered_map<ChunkOwner, uint64_t> per_owner;
  std::unordered_map<uint64_t, uint64_t> per_task;
  // lint: iter-ok(commutative integer sums and counts; order cannot matter)
  for (const auto& [handle, entry] : live) {
    live_bytes += entry.class_bytes;
    frag += FragOf(entry);
    ++per_owner[entry.owner];
    ++per_task[entry.owner.task_id];
  }
  // Byte conservation: every byte is either free (a bulk chunk or a free
  // slab slot) or occupied by a live slot's class.
  ASSERT_EQ(pool.free_bytes() + live_bytes, capacity);
  ASSERT_EQ(pool.frag_bytes(), frag);
  for (const auto& [task_id, count] : per_task) {
    ASSERT_EQ(pool.HeldByTask(task_id), count);
  }

  // AllocatedChunks must list exactly the model's live set.
  auto chunks = pool.AllocatedChunks();
  ASSERT_EQ(chunks.size(), live.size());
  std::unordered_set<ChunkHandle> listed;
  for (const auto& [handle, owner] : chunks) {
    ASSERT_TRUE(listed.insert(handle).second) << "duplicate handle listed";
    auto entry = live.find(handle);
    ASSERT_TRUE(entry != live.end());
    ASSERT_EQ(entry->second.owner, owner);
  }
  (void)per_owner;
}

void RunModel(uint64_t seed, bool flat) {
  ChunkPoolConfig config;
  config.pool_size = MiB(4);  // 4 bulk chunks: exhaustion is common
  config.chunk_size = MiB(1);
  config.flat = flat;
  ChunkPool pool(config);
  const uint64_t capacity = MiB(4);

  Rng rng(seed);
  std::unordered_map<ChunkHandle, ModelEntry> live;
  std::vector<ChunkHandle> order;  // live handles, for random picks

  auto pick = [&]() -> ChunkHandle {
    return order[rng.Uniform(order.size())];
  };
  auto drop = [&](ChunkHandle handle) {
    live.erase(handle);
    for (auto& h : order) {
      if (h == handle) {
        h = order.back();
        order.pop_back();
        break;
      }
    }
  };

  for (int step = 0; step < 2000; ++step) {
    uint64_t op = rng.Uniform(100);
    if (op < 55) {  // allocate
      ChunkOwner owner{1 + rng.Uniform(6), rng.Uniform(4) == 0 ? 1u : 0u,
                       rng.Uniform(8) == 0};
      uint64_t bytes = RandomBytes(rng);
      auto handle = pool.Allocate(owner, bytes);
      if (handle.ok()) {
        ASSERT_FALSE(live.count(*handle)) << "handle already live";
        uint64_t slot = pool.slot_bytes(*handle);
        // The slot must fit the request; it may be a larger class than
        // the ideal fit when the request fell upward, never a smaller.
        ASSERT_GE(slot, bytes);
        ASSERT_GE(slot, pool.class_bytes_for(bytes));
        auto stamped = pool.OwnerOf(*handle);
        ASSERT_TRUE(stamped.ok());
        ASSERT_EQ(*stamped, owner);
        live.emplace(*handle, ModelEntry{owner, bytes, slot});
        order.push_back(*handle);
      } else {
        ASSERT_EQ(handle.status().code(), StatusCode::kResourceExhausted);
        // Exhaustion with the whole pool free would be a lost-capacity bug.
        ASSERT_LT(pool.free_bytes(), capacity);
      }
    } else if (op < 80) {  // free by the rightful owner
      if (order.empty()) continue;
      ChunkHandle victim = pick();
      ASSERT_TRUE(pool.Free(victim, live.at(victim).owner).ok());
      drop(victim);
    } else if (op < 87) {  // free by an impostor: rejected, still live
      if (order.empty()) continue;
      ChunkHandle victim = pick();
      ChunkOwner impostor = live.at(victim).owner;
      impostor.task_id += 1000;
      ASSERT_EQ(pool.Free(victim, impostor).code(),
                StatusCode::kFailedPrecondition);
      ASSERT_TRUE(pool.OwnerOf(victim).ok());
    } else if (op < 93) {  // force-free (the GC path)
      if (order.empty()) continue;
      ChunkHandle victim = pick();
      ASSERT_TRUE(pool.ForceFree(victim).ok());
      drop(victim);
    } else if (op < 98) {  // double free: rejected
      if (order.empty()) continue;
      ChunkHandle victim = pick();
      ChunkOwner owner = live.at(victim).owner;
      ASSERT_TRUE(pool.Free(victim, owner).ok());
      drop(victim);
      ASSERT_FALSE(pool.Free(victim, owner).ok());
    } else {  // node crash
      pool.Reset();
      live.clear();
      order.clear();
    }
    CheckBooks(pool, live, capacity);
  }

  // Drain the model: the pool must hand every byte back.
  for (ChunkHandle handle : order) {
    ASSERT_TRUE(pool.Free(handle, live.at(handle).owner).ok());
  }
  EXPECT_EQ(pool.allocated_count(), 0u);
  EXPECT_EQ(pool.free_bytes(), capacity) << "leaked bytes after drain";
  EXPECT_EQ(pool.free_chunks(), pool.total_chunks())
      << "slab failed to dissolve";
  EXPECT_EQ(pool.frag_bytes(), 0u);
}

TEST(ChunkPoolModelTest, TieredPoolMatchesReferenceModel) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    RunModel(seed, /*flat=*/false);
  }
}

TEST(ChunkPoolModelTest, FlatPoolMatchesReferenceModel) {
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    RunModel(seed, /*flat=*/true);
  }
}

}  // namespace
}  // namespace spongefiles::sponge
